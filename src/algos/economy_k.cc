#include "algos/economy_k.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <span>
#include <utility>

#include "core/rng.h"

namespace etsc {

namespace {

// Cluster membership probabilities of a prefix against full-length centroids,
// using only the first `prefix_len` coordinates (same logistic-of-relative-
// distance rule as KMeansModel::MembershipProbabilities).
std::vector<double> PrefixMemberships(
    const std::vector<std::vector<double>>& centroids,
    std::span<const double> prefix, size_t prefix_len) {
  std::vector<double> probs(centroids.size(), 0.0);
  if (centroids.empty()) return probs;
  std::vector<double> dist(centroids.size(), 0.0);
  double mean_dist = 0.0;
  for (size_t c = 0; c < centroids.size(); ++c) {
    double sum = 0.0;
    const size_t n = std::min({prefix_len, prefix.size(), centroids[c].size()});
    for (size_t t = 0; t < n; ++t) {
      const double d = prefix[t] - centroids[c][t];
      sum += d * d;
    }
    dist[c] = std::sqrt(sum);
    mean_dist += dist[c];
  }
  mean_dist /= static_cast<double>(centroids.size());
  double total = 0.0;
  for (size_t c = 0; c < centroids.size(); ++c) {
    const double delta = mean_dist > 0.0 ? (mean_dist - dist[c]) / mean_dist : 0.0;
    probs[c] = 1.0 / (1.0 + std::exp(-6.0 * delta));
    total += probs[c];
  }
  if (total > 0.0) {
    for (double& p : probs) p /= total;
  } else {
    std::fill(probs.begin(), probs.end(),
              1.0 / static_cast<double>(probs.size()));
  }
  return probs;
}

std::vector<double> PrefixFeatures(std::span<const double> values,
                                   size_t len) {
  std::vector<double> features(values.begin(),
                               values.begin() +
                                   std::min(len, values.size()));
  features.resize(len, features.empty() ? 0.0 : features.back());
  return features;
}

}  // namespace

std::string EcoCostTrigger::config_fingerprint() const {
  const auto& o = options_;
  std::string grid;
  for (size_t k : o.cluster_grid) grid += std::to_string(k) + "/";
  return "eco-cost(grid=" + grid + ",tc=" + FingerprintDouble(o.time_cost) +
         ",lambda=" + FingerprintDouble(o.lambda) +
         ",rdw=" + FingerprintDouble(o.relative_delay_weight) +
         ",cv=" + std::to_string(o.cv_folds) +
         ",gbdt=" + std::to_string(o.gbdt.num_rounds) + "/" +
         FingerprintDouble(o.gbdt.learning_rate) + "/" +
         FingerprintDouble(o.gbdt.subsample) + "/" +
         std::to_string(o.gbdt.tree.max_depth) + "/" +
         std::to_string(o.gbdt.tree.min_samples_leaf) +
         ",seed=" + std::to_string(o.seed) + ")";
}

ComposedOptions EcoCostTrigger::DefaultComposedOptions() const {
  ComposedOptions options;
  options.num_checkpoints = 20;
  options.grid = CheckpointGrid::kFloorMinOne;
  return options;
}

Status EcoCostTrigger::PlanCheckpoints(const Dataset& train,
                                       const FullClassifier*, const Deadline&,
                                       std::vector<size_t>*) {
  if (train.empty()) {
    return Status::InvalidArgument("ECONOMY-K: empty training set");
  }
  if (train.NumVariables() != 1) {
    return Status::InvalidArgument("ECONOMY-K: univariate input required");
  }
  if (train.MinLength() == 0) {
    return Status::InvalidArgument("ECONOMY-K: empty series");
  }
  return Status::OK();
}

double EcoCostTrigger::ExpectedCost(const std::vector<double>& memberships,
                                    size_t ci_future) const {
  const double err_cost = options_.lambda * options_.time_cost;
  // Delay normalised by the horizon: consuming everything costs
  // relative_delay_weight * err_cost.
  double cost = options_.relative_delay_weight * err_cost *
                static_cast<double>(checkpoints_[ci_future]) /
                static_cast<double>(length_);
  for (size_t k = 0; k < memberships.size(); ++k) {
    double misclass = 0.0;
    for (size_t yi = 0; yi < class_labels_.size(); ++yi) {
      misclass += prior_[k][yi] * (1.0 - prob_correct_[ci_future][k][yi]);
    }
    cost += memberships[k] * misclass * err_cost;
  }
  return cost;
}

Status EcoCostTrigger::FitWithClusters(const Dataset& train, size_t k,
                                       const Deadline& deadline,
                                       double* training_cost) {
  const size_t n = train.size();
  Rng rng(options_.seed + k);

  std::vector<std::vector<double>> full(n);
  for (size_t i = 0; i < n; ++i) {
    full[i] = PrefixFeatures(train.instance(i).channel(0), length_);
  }

  KMeansOptions kmeans_options;
  kmeans_options.num_clusters = k;
  ETSC_ASSIGN_OR_RETURN(clusters_, KMeansFit(full, kmeans_options, &rng));
  const size_t num_clusters = clusters_.centroids.size();
  const size_t num_classes = class_labels_.size();
  std::map<int, size_t> class_index;
  for (size_t c = 0; c < num_classes; ++c) class_index[class_labels_[c]] = c;

  // Class priors per cluster (Laplace-smoothed).
  prior_.assign(num_clusters, std::vector<double>(num_classes, 1.0));
  for (size_t i = 0; i < n; ++i) {
    prior_[clusters_.assignments[i]][class_index[train.label(i)]] += 1.0;
  }
  for (auto& row : prior_) {
    double total = 0.0;
    for (double v : row) total += v;
    for (double& v : row) v /= total;
  }

  // Out-of-sample predictions per checkpoint (k-fold CV) for the reliability
  // tables; in-sample GBDT confusion is near-perfect and would collapse the
  // stopping rule to the first checkpoint.
  std::vector<std::vector<int>> oos_pred(
      checkpoints_.size(), std::vector<int>(n, class_labels_[0] - 1));
  const size_t folds =
      n >= 2 * std::max<size_t>(options_.cv_folds, 2) ? options_.cv_folds : 0;
  if (folds >= 2) {
    const auto splits = StratifiedKFold(train, folds, &rng);
    for (const auto& split : splits) {
      for (size_t ci = 0; ci < checkpoints_.size(); ++ci) {
        ETSC_RETURN_NOT_OK(deadline.Check("ECONOMY-K: train budget exceeded"));
        const size_t len = checkpoints_[ci];
        std::vector<std::vector<double>> fold_features;
        std::vector<int> fold_labels;
        fold_features.reserve(split.train.size());
        for (size_t i : split.train) {
          fold_features.push_back(
              PrefixFeatures(train.instance(i).channel(0), len));
          fold_labels.push_back(train.label(i));
        }
        GbdtClassifier fold_model(options_.gbdt);
        ETSC_RETURN_NOT_OK(fold_model.Fit(fold_features, fold_labels, &rng));
        for (size_t i : split.test) {
          ETSC_ASSIGN_OR_RETURN(
              oos_pred[ci][i],
              fold_model.Predict(
                  PrefixFeatures(train.instance(i).channel(0), len)));
        }
      }
    }
  }

  // Base classifier + per-cluster correctness probabilities per checkpoint.
  models_.clear();
  models_.reserve(checkpoints_.size());
  prob_correct_.assign(
      checkpoints_.size(),
      std::vector<std::vector<double>>(num_clusters,
                                       std::vector<double>(num_classes, 0.5)));
  for (size_t ci = 0; ci < checkpoints_.size(); ++ci) {
    ETSC_RETURN_NOT_OK(deadline.Check("ECONOMY-K: train budget exceeded"));
    const size_t len = checkpoints_[ci];
    std::vector<std::vector<double>> features(n);
    for (size_t i = 0; i < n; ++i) {
      features[i] = PrefixFeatures(train.instance(i).channel(0), len);
    }
    GbdtClassifier model(options_.gbdt);
    ETSC_RETURN_NOT_OK(model.Fit(features, train.labels(), &rng));

    // Confusion-derived P(correct | y, cluster) with Laplace smoothing, from
    // the out-of-sample predictions when available.
    std::vector<std::vector<double>> correct(num_clusters,
                                             std::vector<double>(num_classes, 1.0));
    std::vector<std::vector<double>> totals(num_clusters,
                                            std::vector<double>(num_classes, 2.0));
    for (size_t i = 0; i < n; ++i) {
      int predicted;
      if (folds >= 2) {
        predicted = oos_pred[ci][i];
      } else {
        ETSC_ASSIGN_OR_RETURN(predicted, model.Predict(features[i]));
      }
      const size_t cluster = clusters_.assignments[i];
      const size_t yi = class_index[train.label(i)];
      totals[cluster][yi] += 1.0;
      if (predicted == train.label(i)) correct[cluster][yi] += 1.0;
    }
    for (size_t c = 0; c < num_clusters; ++c) {
      for (size_t yi = 0; yi < num_classes; ++yi) {
        prob_correct_[ci][c][yi] = correct[c][yi] / totals[c][yi];
      }
    }
    models_.push_back(std::move(model));
  }

  // Simulated cost of the stopping rule over the training set.
  double total_cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const auto& values = full[i];
    double cost = options_.relative_delay_weight * options_.lambda *
                  options_.time_cost;
    for (size_t ci = 0; ci < checkpoints_.size(); ++ci) {
      const auto memberships = PrefixMemberships(clusters_.centroids, values,
                                                 checkpoints_[ci]);
      size_t best_future = ci;
      double best_cost = std::numeric_limits<double>::infinity();
      for (size_t cj = ci; cj < checkpoints_.size(); ++cj) {
        const double c = ExpectedCost(memberships, cj);
        if (c < best_cost) {
          best_cost = c;
          best_future = cj;
        }
      }
      if (best_future == ci || ci + 1 == checkpoints_.size()) {
        const auto features = PrefixFeatures(values, checkpoints_[ci]);
        ETSC_ASSIGN_OR_RETURN(int predicted, models_[ci].Predict(features));
        cost = options_.relative_delay_weight * options_.lambda *
               options_.time_cost * static_cast<double>(checkpoints_[ci]) /
               static_cast<double>(length_);
        if (predicted != train.label(i)) {
          cost += options_.lambda * options_.time_cost;
        }
        break;
      }
    }
    total_cost += cost;
  }
  *training_cost = total_cost / static_cast<double>(n);
  return Status::OK();
}

Status EcoCostTrigger::Fit(const TriggerFitContext& ctx) {
  const Dataset& train = *ctx.train;
  length_ = train.MinLength();
  class_labels_ = train.ClassLabels();
  checkpoints_ = *ctx.checkpoints;

  // Grid-search cluster counts; keep the cheapest configuration.
  double best_cost = std::numeric_limits<double>::infinity();
  KMeansModel best_clusters;
  std::vector<GbdtClassifier> best_models;
  std::vector<std::vector<std::vector<double>>> best_prob_correct;
  std::vector<std::vector<double>> best_prior;
  bool found = false;
  for (size_t k : options_.cluster_grid) {
    double cost = 0.0;
    Status status = FitWithClusters(train, k, *ctx.deadline, &cost);
    if (!status.ok()) {
      // Budget expiry (either code) must abort the whole grid search, not
      // silently try the next k with no time left.
      if (status.code() == StatusCode::kResourceExhausted ||
          status.code() == StatusCode::kDeadlineExceeded) {
        return status;
      }
      continue;
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_clusters = clusters_;
      best_models = models_;
      best_prob_correct = prob_correct_;
      best_prior = prior_;
      found = true;
    }
  }
  if (!found) {
    return Status::Internal("ECONOMY-K: every cluster configuration failed");
  }
  clusters_ = std::move(best_clusters);
  models_ = std::move(best_models);
  prob_correct_ = std::move(best_prob_correct);
  prior_ = std::move(best_prior);
  return Status::OK();
}

Result<TriggerDecision> EcoCostTrigger::Decide(const TriggerEvidence& ev,
                                               TriggerState*) const {
  if (models_.empty()) {
    return Status::FailedPrecondition("ECONOMY-K: not fitted");
  }
  if (ev.series->num_variables() != 1) {
    return Status::InvalidArgument("ECONOMY-K: univariate input required");
  }
  ETSC_RETURN_NOT_OK(ev.deadline->Check("ECONOMY-K: predict budget exceeded"));
  const auto& values = ev.series->channel(0);
  const size_t ci = ev.checkpoint;
  const auto memberships =
      PrefixMemberships(clusters_.centroids, values, ev.prefix_length);
  size_t best_future = ci;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t cj = ci; cj < checkpoints_.size(); ++cj) {
    const double c = ExpectedCost(memberships, cj);
    if (c < best_cost) {
      best_cost = c;
      best_future = cj;
    }
  }
  TriggerDecision decision;
  if (best_future == ci || ev.is_last) {
    const auto features = PrefixFeatures(values, ev.prefix_length);
    ETSC_ASSIGN_OR_RETURN(int label, models_[ci].Predict(features));
    decision.halt = true;
    decision.label = label;
  }
  return decision;
}

Result<std::optional<EarlyPrediction>> EcoCostTrigger::Finalize(
    const TimeSeries& series, TriggerState*) const {
  // Series shorter than the first checkpoint: use the first model on what we
  // have.
  const auto features = PrefixFeatures(series.channel(0), checkpoints_[0]);
  ETSC_ASSIGN_OR_RETURN(int label, models_[0].Predict(features));
  EarlyPrediction out;
  out.label = label;
  out.prefix_length = series.length();
  return std::optional<EarlyPrediction>(out);
}

std::unique_ptr<Trigger> EcoCostTrigger::CloneUnfitted() const {
  return std::make_unique<EcoCostTrigger>(options_);
}

Status EcoCostTrigger::SaveState(Serializer& out) const {
  if (models_.empty()) return Status::FailedPrecondition("ECO-K: not fitted");
  out.Begin("eco-cost");
  out.SizeT(length_);
  out.IntVec(class_labels_);
  out.SizeVec(checkpoints_);
  clusters_.SaveState(out);
  out.SizeT(models_.size());
  for (const GbdtClassifier& model : models_) model.SaveState(out);
  out.SizeT(prob_correct_.size());
  for (const auto& per_cluster : prob_correct_) out.F64Mat(per_cluster);
  out.F64Mat(prior_);
  out.End();
  return Status::OK();
}

Status EcoCostTrigger::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("eco-cost"));
  ETSC_ASSIGN_OR_RETURN(length_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(class_labels_, in.IntVec());
  ETSC_ASSIGN_OR_RETURN(checkpoints_, in.SizeVec());
  ETSC_RETURN_NOT_OK(clusters_.LoadState(in));
  ETSC_ASSIGN_OR_RETURN(size_t num_models, in.SizeT());
  if (num_models != checkpoints_.size() || num_models == 0 ||
      class_labels_.empty()) {
    return Status::DataLoss("ECO-K: inconsistent fitted state");
  }
  models_.assign(num_models, GbdtClassifier(options_.gbdt));
  for (GbdtClassifier& model : models_) {
    ETSC_RETURN_NOT_OK(model.LoadState(in));
  }
  ETSC_ASSIGN_OR_RETURN(size_t num_tables, in.SizeT());
  if (num_tables != num_models) {
    return Status::DataLoss("ECO-K: confusion table count mismatch");
  }
  prob_correct_.assign(num_tables, {});
  for (auto& per_cluster : prob_correct_) {
    ETSC_ASSIGN_OR_RETURN(per_cluster, in.F64Mat());
    if (per_cluster.size() != clusters_.centroids.size()) {
      return Status::DataLoss("ECO-K: confusion table cluster mismatch");
    }
  }
  ETSC_ASSIGN_OR_RETURN(prior_, in.F64Mat());
  if (prior_.size() != clusters_.centroids.size()) {
    return Status::DataLoss("ECO-K: prior cluster mismatch");
  }
  return in.Leave();
}

namespace {

ComposedParts EconomyKParts(const EconomyKOptions& options) {
  ComposedParts parts;
  parts.name = "ECO-K";
  EcoCostTriggerOptions trigger_options;
  trigger_options.cluster_grid = options.cluster_grid;
  trigger_options.time_cost = options.time_cost;
  trigger_options.lambda = options.lambda;
  trigger_options.relative_delay_weight = options.relative_delay_weight;
  trigger_options.cv_folds = options.cv_folds;
  trigger_options.gbdt = options.gbdt;
  trigger_options.seed = options.seed;
  parts.trigger = std::make_unique<EcoCostTrigger>(std::move(trigger_options));
  parts.options.num_checkpoints = options.max_checkpoints;
  parts.options.grid = CheckpointGrid::kFloorMinOne;
  return parts;
}

}  // namespace

EconomyKClassifier::EconomyKClassifier(EconomyKOptions options)
    : ComposedEarlyClassifier(EconomyKParts(options)),
      options_(std::move(options)) {}

std::string EconomyKClassifier::config_fingerprint() const {
  const auto& o = options_;
  std::string grid;
  for (size_t k : o.cluster_grid) grid += std::to_string(k) + "/";
  return "ECO-K(grid=" + grid + ",tc=" + FingerprintDouble(o.time_cost) +
         ",lambda=" + FingerprintDouble(o.lambda) +
         ",rdw=" + FingerprintDouble(o.relative_delay_weight) +
         ",cp=" + std::to_string(o.max_checkpoints) +
         ",cv=" + std::to_string(o.cv_folds) +
         ",gbdt=" + std::to_string(o.gbdt.num_rounds) + "/" +
         FingerprintDouble(o.gbdt.learning_rate) + "/" +
         FingerprintDouble(o.gbdt.subsample) + "/" +
         std::to_string(o.gbdt.tree.max_depth) + "/" +
         std::to_string(o.gbdt.tree.min_samples_leaf) +
         ",seed=" + std::to_string(o.seed) + ")";
}

std::unique_ptr<EarlyClassifier> EconomyKClassifier::CloneUntrained() const {
  return std::make_unique<EconomyKClassifier>(options_);
}

size_t EconomyKClassifier::chosen_clusters() const {
  return static_cast<const EcoCostTrigger&>(trigger()).chosen_clusters();
}

}  // namespace etsc
