// Reproduces paper Figure 10: mean earliness per dataset category (lower is
// better; 1.0 means the full series was consumed).

#include "bench/bench_common.h"

int main() {
  etsc::bench::Campaign campaign;
  campaign.Run();
  etsc::bench::PrintCategoryTable(
      campaign, "Figure 10: Earliness per category (lower is better)",
      etsc::bench::CellEarliness);
  return 0;
}
