#ifndef ETSC_BENCH_BENCH_COMMON_H_
#define ETSC_BENCH_BENCH_COMMON_H_

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/categorize.h"
#include "core/classifier.h"
#include "core/dataset.h"
#include "core/supervisor.h"
#include "data/repository.h"

namespace etsc::bench {

/// Campaign configuration (paper Sec. 6.1 protocol, scaled for one machine).
/// Environment overrides:
///   ETSC_BENCH_SCALE     height scale for datasets above 1000 instances
///                        (default 0.05; 1.0 = paper-sized)
///   ETSC_BENCH_FOLDS     stratified CV folds (default 2; paper: 5)
///   ETSC_BENCH_BUDGET    per-fold training budget in seconds (default 30;
///                        stands in for the paper's 48-hour cut-off)
///   ETSC_BENCH_PREDICT_BUDGET  per-instance prediction budget in seconds
///                        (default: unlimited); an overrun degrades that
///                        instance to a full-length miss instead of stalling
///                        the campaign
///   ETSC_BENCH_MARITIME  maritime window count (default 1000)
///   ETSC_BENCH_ALPHA     misclassification-vs-delay cost ratio alpha in
///                        [0, 1] for the report's cost-sensitive score
///                        CostScore(acc, earliness, alpha) (default 0.8).
///                        Pure reporting: derived from journalled
///                        accuracy/earliness, so it is excluded from the
///                        journal fingerprint
///   ETSC_BENCH_ALGOS     comma list restricting algorithms; entries may be
///                        paper names (ECTS, TEASER, ...) or composed
///                        '<base>+<trigger>' specs such as
///                        "minirocket-logistic+prob" (default: all 8)
///   ETSC_BENCH_DATASETS  comma list restricting datasets (default: all 12)
///   ETSC_BENCH_CACHE     campaign cache path (default etsc_campaign_cache.csv)
///   ETSC_BENCH_REPORT    machine-readable JSON report path (default:
///                        `<cache_path>.report.json`)
///   ETSC_BENCH_REPORT_ONLY  when set (non-empty), Run() only loads the cache
///                        and reports; missing cells print as "--" instead of
///                        being computed (useful while a campaign is running
///                        in another process)
///   ETSC_BENCH_SHARD     "i/N": compute only cells whose dataset-major grid
///                        index is congruent to i mod N (0 <= i < N). Journal
///                        and report paths are suffixed ".shard-i-of-N";
///                        shards from the same config merge bit-identically
///                        (see `etsc_cli --merge-shards`)
///   ETSC_RETRY_MAX / ETSC_RETRY_BASE_MS / ETSC_QUARANTINE_AFTER /
///   ETSC_WATCHDOG_GRACE  supervisor knobs (core/supervisor.h): bounded Fit
///                        retries with deterministic backoff, per-algorithm
///                        circuit breaker, hung-cell watchdog
///   ETSC_BENCH_FAULT     fault-injection spec for supervisor testing, a
///                        comma list of ALGO:KIND entries wrapping the named
///                        algorithm's prototype: "ECTS:flaky:1" (first k Fit
///                        attempts fail transiently), "ECO-K:crash" (every
///                        Fit fails deterministically), "EDSC:hang-fit" /
///                        "EDSC:hang-predict" (spins until the watchdog
///                        cancels). Excluded from Fingerprint() like the
///                        shard selector — it is a harness knob, not a
///                        result-defining configuration... except that
///                        injected faults DO change the affected cells'
///                        results, which is why check.sh compares faulted
///                        campaigns against clean ones only on unaffected
///                        algorithms. The "die-at:<k>" kind (abrupt process
///                        exit mid-cell, core/fault.h) makes crash drills
///                        scriptable.
///   ETSC_LEASE_TTL_MS / ETSC_HEARTBEAT_MS  worker-fabric lease knobs
///                        (core/fabric.h): how long an unrenewed lease
///                        survives and how often RunWorker renews it.
///
/// Numeric overrides are validated: a value that is not a number (or is out
/// of range) logs a warning and keeps the default instead of silently
/// becoming 0 the way bare strtod would make it.
struct CampaignConfig {
  double height_scale = 0.05;
  size_t folds = 2;
  double train_budget_seconds = 30.0;
  double predict_budget_seconds = std::numeric_limits<double>::infinity();
  size_t maritime_windows = 1000;
  uint64_t seed = 42;
  /// Cost ratio for the report's cost-sensitive score (ETSC_BENCH_ALPHA).
  /// Reporting-only — derivable from journalled accuracy/earliness — so it
  /// does not participate in Fingerprint().
  double cost_alpha = 0.8;
  std::vector<std::string> algorithms;  // paper order
  std::vector<std::string> datasets;    // Table-3 order
  std::string cache_path = "etsc_campaign_cache.csv";
  /// JSON report destination; empty means `<cache_path>.report.json`.
  std::string report_path;
  bool report_only = false;
  /// Shard selector: this process computes only grid cells with
  /// index % shard_count == shard_index (dataset-major over the full
  /// datasets x algorithms grid, cached or not, so the partition is
  /// independent of cache state). 0/1 = the whole campaign. Excluded from
  /// Fingerprint(): all shards of one campaign share a config identity and
  /// their journals merge under one header.
  size_t shard_index = 0;
  size_t shard_count = 1;
  /// Cell-level supervision: Fit retry policy, circuit breaker threshold,
  /// watchdog grace (core/supervisor.h). max_retries and quarantine_after
  /// change which results exist (retried fits succeed, quarantined cells are
  /// skipped) and so participate in Fingerprint(); base_backoff_ms and
  /// watchdog_grace only shape wall-clock behaviour and do not.
  SupervisorOptions supervisor;
  /// Fault-injection spec (ETSC_BENCH_FAULT, see above); empty = no faults.
  std::string fault_spec;

  /// Built from defaults + environment overrides.
  static CampaignConfig FromEnv();

  /// One-line fingerprint; cache entries from other configs are discarded.
  std::string Fingerprint() const;
};

/// Names of the eight evaluated algorithms in the paper's plot order.
const std::vector<std::string>& PaperAlgorithms();

/// Journal format version, embedded in the header fingerprint as "v<N>".
/// v4 introduced '@'-prefixed control rows (worker leases and quarantine
/// broadcasts, core/fabric.h); readers from older builds would misparse
/// them, so LoadCache rejects any journal whose header claims a NEWER
/// version with an actionable error instead of loading garbage.
inline constexpr int kJournalFormatVersion = 4;

/// The journal header line Campaign writes and expects for `config`:
/// `# <config fingerprint> data=<16-hex combined dataset fingerprint>`.
/// Generates the configured datasets to hash them, so it costs one repository
/// pass; shards and the merge step use it to prove they describe the same
/// inputs. Fails when no configured dataset can be generated.
Result<std::string> JournalHeaderForConfig(const CampaignConfig& config);

/// Escapes one journal field for single-line CSV storage: backslash, newline,
/// carriage return, and comma become two-character backslash sequences. With
/// every comma escaped, an arbitrary failure message can neither tear a row
/// across lines nor forge the `,#end` end-of-row sentinel.
std::string EscapeJournalField(const std::string& raw);

/// Inverse of EscapeJournalField; unknown escape sequences pass through
/// verbatim (forward compatibility with journals written by newer builds).
std::string UnescapeJournalField(const std::string& escaped);

struct CampaignCell;

/// Serialises one cell as a journal row (sentinel-terminated, no trailing
/// newline) with max_digits10 floats — the single row format shared by the
/// single-process journal writer, the worker fabric, and the shard merge,
/// which is what makes their journals byte-comparable.
std::string FormatJournalRow(const CampaignCell& cell);

/// What MergeShardJournals found and wrote.
struct MergeSummary {
  /// Deduplicated terminal cell rows written to the output journal.
  size_t rows = 0;
  /// Control rows ('@' leases / quarantine broadcasts) dropped from inputs.
  size_t control_rows = 0;
  /// Cells of the config's datasets x algorithms grid.
  size_t grid_cells = 0;
  /// Grid cells with a terminal row among the merged inputs.
  size_t terminal_cells = 0;
  /// True when every grid cell is terminal — only then may the final JSON
  /// report be emitted (the continuous-merge loop polls this).
  bool complete = false;
};

/// Merges shard/worker journals written under one campaign identity into a
/// single canonical journal at `out_path`: every input's header must equal
/// `expected_header` (the mismatch diagnostic names both fingerprints),
/// newer-versioned inputs are rejected with an actionable error, control
/// rows are stripped, rows are deduplicated keep-last per (algorithm,
/// dataset) and re-emitted in the canonical dataset-major order of `config`
/// (off-grid rows survive in first-seen order). The merged journal is
/// byte-identical to a single-process run's journal, timing fields aside.
Result<MergeSummary> MergeShardJournals(const std::string& out_path,
                                        const std::vector<std::string>& inputs,
                                        const CampaignConfig& config,
                                        const std::string& expected_header);

/// Test-only crash-drill hooks for Campaign::RunWorker. `on_cell` runs after
/// a lease is acquired and before the cell computes; returning false makes
/// the worker abandon the run on the spot — lease row left in the journal,
/// never released — which is what a killed process looks like to the others.
struct WorkerDrillHooks {
  std::function<bool(const std::string& algorithm, const std::string& dataset)>
      on_cell;
};

/// Builds an algorithm with the paper's Table-4 parameters (plus the scaled
/// EDSC candidate cap documented in DESIGN.md). `dataset_name` selects the
/// per-dataset TEASER S (10 for Biological/Maritime, 20 otherwise). An
/// unknown name yields NotFound listing the paper algorithms.
Result<std::unique_ptr<EarlyClassifier>> MakePaperAlgorithm(
    const std::string& algorithm, const std::string& dataset_name,
    size_t series_length);

/// One (algorithm, dataset) cell of the campaign.
struct CampaignCell {
  std::string algorithm;
  std::string dataset;
  bool trained = false;
  /// Failure string of the first failed fold (Fit error) or, when trained,
  /// of the first degraded prediction (predict deadline overrun). Failed
  /// cells are first-class results: recorded, journalled, reported.
  std::string failure;
  double accuracy = 0.0;
  double f1 = 0.0;
  double earliness = 1.0;
  double harmonic_mean = 0.0;
  double train_seconds = 0.0;
  double test_seconds_per_instance = 0.0;
  /// Total Fit retries across folds (fit_attempts - 1 summed); 0 when every
  /// fold trained first try. Deterministic for a given config + fault spec.
  int retries = 0;
  /// True when the circuit breaker skipped this cell without attempting it
  /// (failure then holds the SkippedQuarantine status string).
  bool quarantined = false;
};

/// The full evaluation campaign: every algorithm on every dataset with
/// stratified CV, incrementally journalled so all fig/table benches share one
/// run and interrupted campaigns resume.
///
/// Uncached (algorithm, dataset) cells run concurrently on the global thread
/// pool (core/parallel.h, width from ETSC_THREADS) as one serial LANE per
/// algorithm (cells in dataset order), each cell's CV folds fanning out on
/// the same pool. Lanes exist for the circuit breaker: an algorithm's
/// consecutive-failure count evolves in dataset order regardless of how
/// lanes interleave, so quarantine decisions — which cells are skipped — are
/// bit-identical at every thread width. Results are bit-identical to a
/// serial run: datasets are generated and per-fold seeds split before
/// dispatch, and cells_ is filled in configuration order after all cells
/// complete. Journal rows are appended under a mutex as cells finish, so a
/// crash mid-campaign still loses at most the rows being written. Run()
/// reports aggregate wall-clock vs. CPU-sum speedup on stderr.
///
/// Journal crash-safety contract:
///  - The journal's first line is the config fingerprint; a file written
///    under another config is rotated aside to `<path>.stale` before the
///    first new append, never appended to (stale rows would be unloadable).
///  - Every row is flushed as soon as its cell completes and ends with an
///    end-of-row sentinel; a trailing row truncated by a mid-write crash is
///    detected, skipped, and recomputed on the next run.
class Campaign {
 public:
  explicit Campaign(CampaignConfig config = CampaignConfig::FromEnv());

  /// Computes (or loads) every cell. Progress goes to the leveled logger
  /// (core/log.h, ETSC_LOG); a machine-readable JSON report — config, cells,
  /// failures, per-phase timings, and a metric-registry snapshot — is written
  /// to ReportPath() at the end of every run, including report-only and
  /// fully-cached ones. Fails only on setup errors (e.g. a journal written
  /// by a newer build); cell failures are first-class rows, not errors.
  Status Run();

  /// Runs this campaign as one worker of a multi-process fabric: cells are
  /// leased through the shared journal (core/fabric.h) instead of planned
  /// up-front, heartbeats are renewed by a background LeaseKeeper while each
  /// cell computes, expired leases of dead workers are stolen (lowest cell
  /// index first), and quarantine decisions replayed from journalled rows —
  /// plus `@quarantine` broadcasts — match the single-process run bit for
  /// bit. Returns once every grid cell has a terminal row (also when other
  /// workers wrote them) or on a setup/journal error. Workers write no
  /// report; the continuous merge (`etsc_cli --merge-shards` /
  /// `--workers`) emits it once the grid is complete. `owner` names this
  /// worker in lease rows; `drill` injects test-only crash behaviour.
  Status RunWorker(const std::string& owner,
                   const WorkerDrillHooks* drill = nullptr);

  /// Where Run() writes the JSON report: config().report_path, or
  /// `<cache_path>.report.json` when unset.
  std::string ReportPath() const;

  /// Cell lookup; null when the combination is not part of the config.
  /// LoadCache deduplicates resumed journals keeping the LAST row per
  /// (algorithm, dataset) — a re-run cell's fresh result wins — so lookups
  /// are unambiguous.
  const CampaignCell* Find(const std::string& algorithm,
                           const std::string& dataset) const;

  /// Canonical Table-3 profiles of the configured datasets.
  const std::vector<DatasetProfile>& profiles() const { return profiles_; }

  const CampaignConfig& config() const { return config_; }
  const std::vector<CampaignCell>& cells() const { return cells_; }

  /// Mean of `extract(cell)` over trained cells of `algorithm` whose dataset
  /// belongs to `category`; NaN when nothing qualifies. Cells whose extracted
  /// value is itself NaN (empty-fold scores) carry no signal and are skipped.
  double CategoryMean(const std::string& algorithm, DatasetCategory category,
                      double (*extract)(const CampaignCell&)) const;

 private:
  /// Freshness of the on-disk journal relative to this config.
  enum class CacheState {
    kMissing,  // no file: first append writes the fingerprint header
    kLoaded,   // fingerprint matched: appends go under the existing header
    kStale,    // fingerprint mismatched: rotate aside before first append
  };

  /// Wall-clock phase timings and cell counts of one Run(), for the report.
  struct RunStats {
    double load_cache_seconds = 0.0;
    double generate_seconds = 0.0;
    double plan_seconds = 0.0;
    double compute_seconds = 0.0;
    double total_seconds = 0.0;
    double cpu_seconds = 0.0;
    size_t cells_loaded = 0;
    size_t cells_computed = 0;
  };

  /// Loads journalled rows under `expected_header`; skips control rows and
  /// torn rows; rejects journals claiming a format version newer than
  /// kJournalFormatVersion (actionable error instead of misparsed rows).
  Status LoadCache(const std::string& expected_header);
  /// Generates the configured datasets (profiles_, journal_header_) —
  /// phase 1 of Run() and RunWorker(). Appends the generated benchmarks to
  /// `benchmarks`; fails when not a single dataset could be generated.
  Status GenerateDatasets(std::vector<BenchmarkDataset>* benchmarks);
  /// Requires journal_mu_ when cells complete concurrently: a row must hit
  /// the file whole (header decision, fresh-line check, write, flush).
  void AppendCache(const CampaignCell& cell);
  void WriteReport(const RunStats& stats) const;
  RepositoryOptions RepoOptions() const;

  CampaignConfig config_;
  std::vector<CampaignCell> cells_;
  std::vector<DatasetProfile> profiles_;
  CacheState cache_state_ = CacheState::kMissing;
  /// Header of the journal this run writes/expects (config fingerprint +
  /// combined dataset fingerprint); set by Run() after dataset generation.
  std::string journal_header_;
  std::mutex journal_mu_;
};

/// Extraction helpers for CategoryMean.
double CellAccuracy(const CampaignCell& cell);
double CellF1(const CampaignCell& cell);
double CellEarliness(const CampaignCell& cell);
double CellHarmonicMean(const CampaignCell& cell);
double CellTrainMinutes(const CampaignCell& cell);

/// Prints a per-category table: one row per algorithm, one column per
/// category, formatted with `digits` decimals ("--" for missing).
void PrintCategoryTable(const Campaign& campaign, const std::string& title,
                        double (*extract)(const CampaignCell&), int digits = 3);

}  // namespace etsc::bench

#endif  // ETSC_BENCH_BENCH_COMMON_H_
