// Serving-engine benchmark (DESIGN.md sec 14): replays a deterministic
// ingest trace of concurrent partial series through the multi-session
// ServingEngine and writes BENCH_serving.json — sessions/sec, sustained
// ingest rate, and p50/p99 per-decision latency from the core/counters
// histograms — at pool width 1 (the serial floor) and width 8. Every engine
// run is cross-checked bit-for-bit against the sequential
// single-StreamingSession reference before its numbers are reported.
//
// Durability and overload sections (DESIGN.md sec 16): the same replay with
// the session WAL armed (journaling overhead vs the pooled run), a crash —
// half the trace journaled, the engine abandoned — recovered and resumed to
// the bit-identical decision set (recovery replay time, resume wall), and a
// shedding run squeezed through a deliberately tiny session table (decided
// sessions shed at the soft watermark, refusals counted).
//
// Knobs: ETSC_BENCH_SERVING_OUT (default BENCH_serving.json; empty skips),
// ETSC_BENCH_SERVING_SESSIONS (default 2000), ETSC_BENCH_SERVING_DATASET
// (default PowerCons), ETSC_BENCH_SERVING_ALGO (default ects).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algos/registrations.h"
#include "core/counters.h"
#include "core/evaluation.h"
#include "core/parallel.h"
#include "core/registry.h"
#include "core/serving.h"
#include "data/repository.h"

namespace {

struct RunNumbers {
  double wall_seconds = 0.0;
  double sessions_per_second = 0.0;
  double ingest_per_second = 0.0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  size_t batches = 0;
  size_t wal_appends = 0;
  bool bit_identical = false;
};

/// One engine replay at pool `width` (journaling to `wal_path` when
/// non-empty), verified against `expected`.
RunNumbers RunAtWidth(size_t width,
                      const std::shared_ptr<const etsc::EarlyClassifier>& model,
                      const etsc::Dataset& data, size_t num_sessions,
                      const std::vector<etsc::IngestEvent>& trace,
                      const std::vector<etsc::ReplayOutcome>& expected,
                      const std::string& wal_path = std::string()) {
  etsc::SetMaxParallelism(width);
  etsc::Histogram& latency =
      etsc::MetricRegistry::Global().histogram("serving.decision_seconds");
  latency.Reset();

  etsc::ServingOptions options;
  options.expected_length = data.MaxLength();
  options.wal_path = wal_path;
  etsc::ServingEngine engine(options);
  RunNumbers numbers;
  if (!engine.RegisterModel("bench", model, data.NumVariables()).ok()) {
    etsc::SetMaxParallelism(0);
    return numbers;
  }
  etsc::Stopwatch timer;
  const auto actual =
      etsc::ReplayThroughEngine(engine, "bench", num_sessions, trace, 256);
  numbers.wall_seconds = timer.Seconds();
  etsc::SetMaxParallelism(0);
  if (!actual.ok()) return numbers;

  numbers.bit_identical = actual->size() == expected.size();
  for (size_t s = 0; numbers.bit_identical && s < expected.size(); ++s) {
    numbers.bit_identical = (*actual)[s] == expected[s];
  }
  numbers.sessions_per_second =
      static_cast<double>(num_sessions) / numbers.wall_seconds;
  numbers.ingest_per_second =
      static_cast<double>(trace.size()) / numbers.wall_seconds;
  numbers.p50_seconds = latency.Quantile(0.5);
  numbers.p99_seconds = latency.Quantile(0.99);
  numbers.batches = engine.stats().batches;
  numbers.wal_appends = engine.stats().wal_appends;
  return numbers;
}

struct RecoveryNumbers {
  size_t sessions_recovered = 0;
  size_t observations_replayed = 0;
  double replay_seconds = 0.0;
  double resume_wall_seconds = 0.0;
  bool bit_identical = false;
};

/// Crash-recovery drill: journal the first half of the trace, abandon the
/// engine mid-flight (a process death leaves exactly this file), recover a
/// fresh engine from the WAL and resume the remainder — the decision set
/// must still match the never-crashed sequential reference.
RecoveryNumbers RunRecovery(
    const std::shared_ptr<const etsc::EarlyClassifier>& model,
    const etsc::Dataset& data, size_t num_sessions,
    const std::vector<etsc::IngestEvent>& trace,
    const std::vector<etsc::ReplayOutcome>& expected,
    const std::string& wal_path) {
  std::remove(wal_path.c_str());
  RecoveryNumbers numbers;
  {
    etsc::ServingOptions options;
    options.expected_length = data.MaxLength();
    options.wal_path = wal_path;
    etsc::ServingEngine engine(options);
    if (!engine.RegisterModel("bench", model, data.NumVariables()).ok()) {
      return numbers;
    }
    std::vector<etsc::SessionId> ids(num_sessions);
    for (size_t s = 0; s < num_sessions; ++s) {
      auto id = engine.Open("bench");
      if (!id.ok()) return numbers;
      ids[s] = *id;
    }
    size_t since = 0;
    for (size_t e = 0; e < trace.size() / 2; ++e) {
      if (!engine.Ingest(ids[trace[e].session], trace[e].values).ok()) {
        return numbers;
      }
      if (++since >= 256) {
        since = 0;
        if (!engine.DispatchBatch().ok()) return numbers;
      }
    }
  }  // abandoned: no Finish, no Close — the observable state of a SIGKILL

  etsc::ServingOptions options;
  options.expected_length = data.MaxLength();
  etsc::ServingEngine recovered(options);
  if (!recovered.RegisterModel("bench", model, data.NumVariables()).ok()) {
    return numbers;
  }
  const auto recovery = recovered.Recover(wal_path);
  if (!recovery.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovery.status().ToString().c_str());
    return numbers;
  }
  numbers.sessions_recovered = recovery->sessions_recovered;
  numbers.observations_replayed = recovery->observations_replayed;
  numbers.replay_seconds = recovery->replay_seconds;

  etsc::Stopwatch timer;
  const auto actual = etsc::ResumeReplayThroughEngine(recovered, "bench",
                                                      num_sessions, trace, 256);
  numbers.resume_wall_seconds = timer.Seconds();
  if (!actual.ok()) return numbers;
  numbers.bit_identical = actual->size() == expected.size();
  for (size_t s = 0; numbers.bit_identical && s < expected.size(); ++s) {
    numbers.bit_identical = (*actual)[s] == expected[s];
  }
  return numbers;
}

struct ShedNumbers {
  size_t opened = 0;
  size_t shed_decided = 0;
  size_t shed_refusals = 0;
  double wall_seconds = 0.0;
};

/// Overload drill: squeeze `pressure_sessions` full-series sessions through
/// a table capped at `max_sessions` with the soft watermark at 0.5 — every
/// admission past the watermark sheds the decided sessions ahead of it, so
/// the run completes without a single hard refusal.
ShedNumbers RunShedPressure(
    const std::shared_ptr<const etsc::EarlyClassifier>& model,
    const etsc::Dataset& data, size_t pressure_sessions,
    size_t max_sessions) {
  etsc::ServingOptions options;
  options.expected_length = data.MaxLength();
  options.max_sessions = max_sessions;
  options.soft_watermark = 0.5;
  etsc::ServingEngine engine(options);
  ShedNumbers numbers;
  if (!engine.RegisterModel("bench", model, data.NumVariables()).ok()) {
    return numbers;
  }
  etsc::Stopwatch timer;
  for (size_t s = 0; s < pressure_sessions; ++s) {
    auto id = engine.Open("bench");
    if (!id.ok()) continue;  // counted by the engine as a shed refusal
    const etsc::TimeSeries& instance = data.instance(s % data.size());
    std::vector<double> point(data.NumVariables());
    for (size_t t = 0; t < instance.length(); ++t) {
      for (size_t v = 0; v < point.size(); ++v) point[v] = instance.at(v, t);
      if (!engine.Ingest(*id, point).ok()) break;
    }
    if ((s + 1) % 8 == 0 && !engine.DispatchBatch().ok()) break;
  }
  (void)engine.DispatchBatch();
  numbers.wall_seconds = timer.Seconds();
  const etsc::ServingStats stats = engine.stats();
  numbers.opened = stats.opened;
  numbers.shed_decided = stats.shed_decided;
  numbers.shed_refusals = stats.shed_refusals;
  return numbers;
}

size_t EnvCount(const char* name, size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const unsigned long parsed = std::strtoul(raw, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::string EnvString(const char* name, const char* fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : raw;
}

int WriteServingBench(const char* path) {
  const std::string dataset_name =
      EnvString("ETSC_BENCH_SERVING_DATASET", "PowerCons");
  const std::string algo = EnvString("ETSC_BENCH_SERVING_ALGO", "ects");
  const size_t num_sessions = EnvCount("ETSC_BENCH_SERVING_SESSIONS", 2000);

  etsc::RepositoryOptions repo;
  auto benchmark = etsc::MakeBenchmarkDataset(dataset_name, repo);
  if (!benchmark.ok()) {
    std::fprintf(stderr, "%s\n", benchmark.status().ToString().c_str());
    return 1;
  }
  etsc::Dataset data = std::move(benchmark->data);
  data.FillMissingValues();

  auto created = etsc::ClassifierRegistry::Global().Create(algo);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<etsc::EarlyClassifier> model = std::move(*created);
  const etsc::Status fitted = model->Fit(data);
  if (!fitted.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fitted.ToString().c_str());
    return 1;
  }

  const auto trace = etsc::BuildReplayTrace(data, num_sessions, 42);
  etsc::Stopwatch sequential_timer;
  const auto expected =
      etsc::ReplaySequential(*model, data.NumVariables(), num_sessions, trace);
  const double sequential_seconds = sequential_timer.Seconds();

  const RunNumbers serial = RunAtWidth(1, model, data, num_sessions, trace,
                                       expected);
  const RunNumbers pooled = RunAtWidth(8, model, data, num_sessions, trace,
                                       expected);
  const std::string wal_path = std::string(path) + ".wal";
  std::remove(wal_path.c_str());
  const RunNumbers journaled = RunAtWidth(8, model, data, num_sessions, trace,
                                          expected, wal_path);
  const RecoveryNumbers recovery = RunRecovery(model, data, num_sessions,
                                               trace, expected, wal_path);
  std::remove(wal_path.c_str());
  std::remove((wal_path + ".stale").c_str());
  const ShedNumbers shed = RunShedPressure(model, data, num_sessions / 4, 64);
  if (!serial.bit_identical || !pooled.bit_identical ||
      !journaled.bit_identical || !recovery.bit_identical) {
    std::fprintf(stderr,
                 "FAIL: engine replay diverged from the sequential reference "
                 "(serial=%d pooled=%d journaled=%d recovered=%d)\n",
                 serial.bit_identical ? 1 : 0, pooled.bit_identical ? 1 : 0,
                 journaled.bit_identical ? 1 : 0,
                 recovery.bit_identical ? 1 : 0);
    return 2;
  }

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"dataset\": \"%s\",\n"
      "  \"algorithm\": \"%s\",\n"
      "  \"sessions\": %zu,\n"
      "  \"events\": %zu,\n"
      "  \"hardware_concurrency\": %u,\n"
      "  \"sequential_reference_wall_s\": %.4f,\n"
      "  \"serial\": {\n"
      "    \"wall_s\": %.4f,\n"
      "    \"sessions_per_second\": %.1f,\n"
      "    \"ingest_per_second\": %.1f,\n"
      "    \"decision_p50_s\": %.3e,\n"
      "    \"decision_p99_s\": %.3e,\n"
      "    \"batches\": %zu,\n"
      "    \"bit_identical\": true\n"
      "  },\n"
      "  \"pooled_8\": {\n"
      "    \"wall_s\": %.4f,\n"
      "    \"sessions_per_second\": %.1f,\n"
      "    \"ingest_per_second\": %.1f,\n"
      "    \"decision_p50_s\": %.3e,\n"
      "    \"decision_p99_s\": %.3e,\n"
      "    \"batches\": %zu,\n"
      "    \"bit_identical\": true\n"
      "  },\n"
      "  \"dispatch_speedup\": %.3f,\n"
      "  \"wal\": {\n"
      "    \"wall_s\": %.4f,\n"
      "    \"wal_appends\": %zu,\n"
      "    \"append_overhead_x\": %.3f,\n"
      "    \"bit_identical\": true\n"
      "  },\n"
      "  \"recovery\": {\n"
      "    \"sessions_recovered\": %zu,\n"
      "    \"observations_replayed\": %zu,\n"
      "    \"wal_replay_ms\": %.2f,\n"
      "    \"resume_wall_s\": %.4f,\n"
      "    \"bit_identical\": true\n"
      "  },\n"
      "  \"shedding\": {\n"
      "    \"max_sessions\": 64,\n"
      "    \"soft_watermark\": 0.5,\n"
      "    \"opened\": %zu,\n"
      "    \"shed_decided\": %zu,\n"
      "    \"shed_refusals\": %zu,\n"
      "    \"wall_s\": %.4f\n"
      "  }\n"
      "}\n",
      dataset_name.c_str(), algo.c_str(), num_sessions, trace.size(),
      std::thread::hardware_concurrency(), sequential_seconds,
      serial.wall_seconds, serial.sessions_per_second,
      serial.ingest_per_second, serial.p50_seconds, serial.p99_seconds,
      serial.batches, pooled.wall_seconds, pooled.sessions_per_second,
      pooled.ingest_per_second, pooled.p50_seconds, pooled.p99_seconds,
      pooled.batches, serial.wall_seconds / pooled.wall_seconds,
      journaled.wall_seconds, journaled.wal_appends,
      journaled.wall_seconds / pooled.wall_seconds,
      recovery.sessions_recovered, recovery.observations_replayed,
      recovery.replay_seconds * 1000.0, recovery.resume_wall_seconds,
      shed.opened, shed.shed_decided, shed.shed_refusals, shed.wall_seconds);
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", path);
  return 0;
}

}  // namespace

int main() {
  etsc::RegisterBuiltinClassifiers();
  const char* out = std::getenv("ETSC_BENCH_SERVING_OUT");
  if (out == nullptr) out = "BENCH_serving.json";
  if (*out == '\0') return 0;
  return WriteServingBench(out);
}
