// Reproduces paper Figure 12: training times in minutes per dataset category
// (lower is better). "--" marks algorithms that did not train within the
// budget, the analogue of the paper's 48-hour cut-off.

#include "bench/bench_common.h"

int main() {
  etsc::bench::Campaign campaign;
  campaign.Run();
  etsc::bench::PrintCategoryTable(
      campaign, "Figure 12: Training time per category (minutes)",
      etsc::bench::CellTrainMinutes, 4);
  return 0;
}
