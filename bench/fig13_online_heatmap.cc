// Reproduces paper Figure 13: online feasibility heatmap. Each cell is the
// per-decision testing time divided by the dataset's observation arrival
// period (for ECEC/TEASER, which consume batches of time-points per prefix,
// the period is multiplied by the prefix step). Values < 1 mean the algorithm
// answers before the next observation arrives ("feasible"); "DNF" marks the
// paper's hatched cells (unable to train).

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

namespace {

// Time-points consumed per decision step: prefix step for the batch-prefix
// algorithms, 1 for point-streaming ones.
double BatchLength(const std::string& algorithm,
                   const etsc::DatasetProfile& profile) {
  const double length = static_cast<double>(profile.length);
  if (algorithm == "ECEC") return std::max(1.0, length / 20.0);  // N = 20
  if (algorithm == "TEASER") {
    const bool new_dataset =
        profile.name == "Biological" || profile.name == "Maritime";
    return std::max(1.0, length / (new_dataset ? 10.0 : 20.0));
  }
  return 1.0;
}

}  // namespace

int main() {
  etsc::bench::Campaign campaign;
  campaign.Run();

  std::printf("\n== Figure 13: online performance heatmap ==\n");
  std::printf("(cell = test seconds per decision / observation period; < 1 "
              "feasible, DNF = could not train)\n");
  std::printf("%-22s %9s", "dataset", "period(s)");
  for (const auto& algorithm : campaign.config().algorithms) {
    std::printf(" %9s", algorithm.c_str());
  }
  std::printf("\n");

  etsc::RepositoryOptions repo;
  repo.seed = campaign.config().seed;
  repo.height_scale = campaign.config().height_scale;
  repo.maritime_windows = campaign.config().maritime_windows;

  for (const auto& profile : campaign.profiles()) {
    auto benchmark = etsc::MakeBenchmarkDataset(profile.name, repo);
    if (!benchmark.ok()) continue;
    const double period = benchmark->data.observation_period_seconds();
    std::printf("%-22s %9.4g", profile.name.c_str(), period);
    for (const auto& algorithm : campaign.config().algorithms) {
      const auto* cell = campaign.Find(algorithm, profile.name);
      if (cell == nullptr || !cell->trained) {
        std::printf(" %9s", "DNF");
        continue;
      }
      const double ratio = cell->test_seconds_per_instance /
                           (period * BatchLength(algorithm, profile));
      std::printf(" %9.3g", ratio);
    }
    std::printf("\n");
  }
  return 0;
}
