// Reproduces paper Table 5: worst-case training complexities, verified
// empirically. For every algorithm the bench sweeps the dataset height N
// (fixed L) and the series length L (fixed N), measures training wall-clock,
// and reports the log-log scaling exponent next to the theoretical bound.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/evaluation.h"
#include "tests/test_util.h"

namespace {

struct TheoryRow {
  const char* algorithm;
  const char* complexity;
};

constexpr TheoryRow kTheory[] = {
    {"ECEC", "O(N * L^3 * #classifiers * #classes * #vars)"},
    {"ECO-K", "O(L*logN + 2*N*L + #classes * #groups * N * #vars)"},
    {"ECTS", "O(N^3 * L * #vars)"},
    {"EDSC", "O(N^2 * L^3 * #vars)"},
    {"S-MINI", "O(N * L * log(L) * #kernels)"},
    {"S-MLSTM", "O(N * #epochs * L)"},
    {"S-WEASEL", "O(N * L^2 * log(L) * #vars)"},
    {"TEASER", "O(L/S * L^2 * #vars)"},
};

// Measured training seconds of one algorithm on a synthetic set of the given
// shape; negative on failure.
double MeasureTrain(const std::string& algorithm, size_t per_class, size_t length,
                    double budget) {
  etsc::Dataset data = etsc::testing::MakeToyDataset(per_class, length,
                                                     /*signal_start=*/0.0, 17);
  auto model =
      etsc::bench::MakePaperAlgorithm(algorithm, data.name(), data.MaxLength());
  if (!model.ok()) return -1.0;
  (*model)->set_train_budget_seconds(budget);
  etsc::Stopwatch timer;
  const etsc::Status status = (*model)->Fit(data);
  if (!status.ok()) return -1.0;
  return timer.Seconds();
}

// Log-log slope between first and last successful sweep point.
double Slope(const std::vector<double>& sizes, const std::vector<double>& times) {
  double first_size = 0, first_time = 0, last_size = 0, last_time = 0;
  bool have_first = false;
  for (size_t i = 0; i < times.size(); ++i) {
    if (times[i] <= 0.0) continue;
    if (!have_first) {
      first_size = sizes[i];
      first_time = std::max(times[i], 1e-4);
      have_first = true;
    }
    last_size = sizes[i];
    last_time = std::max(times[i], 1e-4);
  }
  if (!have_first || last_size == first_size) return std::nan("");
  return std::log(last_time / first_time) / std::log(last_size / first_size);
}

}  // namespace

int main() {
  const double budget = 20.0;
  const std::vector<size_t> heights = {8, 16, 32};    // per class (N = 2x)
  const std::vector<size_t> lengths = {24, 48, 96};

  std::printf("== Table 5: worst-case complexity, checked empirically ==\n");
  std::printf("%-10s %-52s %8s %8s\n", "algorithm", "theoretical (paper)",
              "dT/dN", "dT/dL");
  for (const TheoryRow& row : kTheory) {
    // Sweep N at L = 48.
    std::vector<double> n_sizes, n_times;
    for (size_t h : heights) {
      n_sizes.push_back(static_cast<double>(2 * h));
      n_times.push_back(MeasureTrain(row.algorithm, h, 48, budget));
    }
    // Sweep L at N = 32.
    std::vector<double> l_sizes, l_times;
    for (size_t l : lengths) {
      l_sizes.push_back(static_cast<double>(l));
      l_times.push_back(MeasureTrain(row.algorithm, 16, l, budget));
    }
    const double dn = Slope(n_sizes, n_times);
    const double dl = Slope(l_sizes, l_times);
    std::printf("%-10s %-52s %8.2f %8.2f\n", row.algorithm, row.complexity,
                dn, dl);
  }
  std::printf(
      "\ndT/dN and dT/dL are measured log-log scaling exponents on small\n"
      "sweeps; constants and lower-order terms dominate at these sizes, so\n"
      "exponents land below the worst-case bounds (the paper's point stands:\n"
      "EDSC/ECTS scale worst in N, ECEC/EDSC in L).\n");
  return 0;
}
