// Reproduces paper Figure 11: harmonic mean of accuracy and (1 - earliness)
// per dataset category.

#include "bench/bench_common.h"

int main() {
  etsc::bench::Campaign campaign;
  campaign.Run();
  etsc::bench::PrintCategoryTable(
      campaign, "Figure 11: Harmonic mean of accuracy and earliness",
      etsc::bench::CellHarmonicMean);
  return 0;
}
