// Google-benchmark microbenchmarks of the ML substrate kernels behind the
// ETSC algorithms: sliding DFT, SFA words, WEASEL/MiniROCKET transforms,
// k-means, subseries distance, GBDT and the LSTM forward pass.
//
// The custom main additionally measures the parallel substrate (squared
// kernels vs. the legacy scalar loops; serial vs. pooled CrossValidate and
// campaign) and writes the numbers to BENCH_parallel.json (path overridable
// via ETSC_BENCH_PARALLEL_OUT; empty to skip), plus the SIMD substrate
// (explicit-vector kernels vs. the frozen pre-SIMD scalar implementations)
// written to BENCH_simd.json (ETSC_BENCH_SIMD_OUT; empty to skip).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "algos/ects.h"
#include "bench/bench_common.h"
#include "core/evaluation.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/simd.h"
#include "ml/distance.h"
#include "ml/fourier.h"
#include "ml/gbdt.h"
#include "ml/kmeans.h"
#include "ml/nn/lstm.h"
#include "ml/sfa.h"
#include "tests/test_util.h"
#include "tsc/minirocket.h"
#include "tsc/weasel.h"

namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  etsc::Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.Gaussian();
  return out;
}

void BM_SlidingDft(benchmark::State& state) {
  const auto series = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(etsc::SlidingDft(series, 32, 4, true));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SlidingDft)->Range(128, 2048)->Complexity(benchmark::oN);

void BM_SfaWord(benchmark::State& state) {
  etsc::Rng rng(2);
  std::vector<std::vector<double>> windows(64);
  std::vector<int> labels(64);
  for (size_t i = 0; i < windows.size(); ++i) {
    windows[i] = RandomSeries(32, 100 + i);
    labels[i] = static_cast<int>(i % 2);
  }
  etsc::Sfa sfa;
  (void)sfa.Fit(windows, labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfa.Word(windows[0]));
  }
}
BENCHMARK(BM_SfaWord);

void BM_WeaselFit(benchmark::State& state) {
  const etsc::Dataset data =
      etsc::testing::MakeToyDataset(static_cast<size_t>(state.range(0)), 64);
  for (auto _ : state) {
    etsc::WeaselClassifier model;
    benchmark::DoNotOptimize(model.Fit(data));
  }
}
BENCHMARK(BM_WeaselFit)->Arg(10)->Arg(20)->Arg(40);

void BM_MiniRocketTransform(benchmark::State& state) {
  const etsc::Dataset data = etsc::testing::MakeToyDataset(10, 128);
  etsc::MiniRocketClassifier model;
  (void)model.Fit(data);
  const etsc::TimeSeries& ts = data.instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Transform(ts));
  }
}
BENCHMARK(BM_MiniRocketTransform);

void BM_KMeans(benchmark::State& state) {
  etsc::Rng gen(3);
  std::vector<std::vector<double>> points(static_cast<size_t>(state.range(0)));
  for (auto& p : points) p = RandomSeries(16, gen.engine()());
  for (auto _ : state) {
    etsc::Rng rng(4);
    etsc::KMeansOptions options;
    options.num_clusters = 3;
    benchmark::DoNotOptimize(etsc::KMeansFit(points, options, &rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KMeans)->Range(64, 1024)->Complexity(benchmark::oN);

void BM_MinSubseriesDistance(benchmark::State& state) {
  const auto pattern = RandomSeries(16, 5);
  const auto series = RandomSeries(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(etsc::MinSubseriesDistance(pattern, series));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinSubseriesDistance)->Range(128, 4096)->Complexity(benchmark::oN);

void BM_MinSubseriesDistanceSq(benchmark::State& state) {
  const auto pattern = RandomSeries(16, 5);
  const auto series = RandomSeries(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(etsc::MinSubseriesDistanceSq(pattern, series));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinSubseriesDistanceSq)
    ->Range(128, 4096)
    ->Complexity(benchmark::oN);

void BM_GbdtFit(benchmark::State& state) {
  etsc::Rng gen(7);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> x(n);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = RandomSeries(8, 200 + i);
    y[i] = x[i][0] > 0 ? 1 : 0;
  }
  etsc::GbdtOptions options;
  options.num_rounds = 10;
  for (auto _ : state) {
    etsc::GbdtClassifier model(options);
    benchmark::DoNotOptimize(model.Fit(x, y, nullptr));
  }
}
BENCHMARK(BM_GbdtFit)->Arg(64)->Arg(256);

void BM_LstmForward(benchmark::State& state) {
  etsc::Rng rng(8);
  etsc::nn::Lstm lstm(32, 16, &rng);
  std::vector<std::vector<std::vector<double>>> input(
      4, std::vector<std::vector<double>>(static_cast<size_t>(state.range(0))));
  for (auto& seq : input) {
    for (auto& step : seq) step = RandomSeries(32, 300);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Forward(input));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LstmForward)->Range(4, 64)->Complexity(benchmark::oN);

// ---------------------------------------------------------------------------
// BENCH_parallel.json: squared-kernel and thread-pool speedups
// ---------------------------------------------------------------------------

// Legacy scalar loops, frozen here as the baseline the squared kernels are
// measured against (the library versions now delegate to the unrolled code).
double LegacyEuclideanPrefix(const std::vector<double>& a,
                             const std::vector<double>& b, size_t len) {
  len = std::min({len, a.size(), b.size()});
  double sum = 0.0;
  for (size_t i = 0; i < len; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double LegacyMinSubseriesDistance(const std::vector<double>& pattern,
                                  const std::vector<double>& series) {
  const size_t m = pattern.size();
  if (m == 0 || series.size() < m) {
    return std::numeric_limits<double>::infinity();
  }
  double best_sq = std::numeric_limits<double>::infinity();
  for (size_t start = 0; start + m <= series.size(); ++start) {
    double sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double d = pattern[i] - series[start + i];
      sum += d * d;
      if (sum >= best_sq) break;
    }
    best_sq = std::min(best_sq, sum);
    if (best_sq == 0.0) break;
  }
  return std::sqrt(best_sq);
}

/// Wall-clock ns per call of `fn`, doubling the repetition count until the
/// measurement window exceeds 50ms.
template <typename Fn>
double NsPerOp(Fn&& fn) {
  fn();  // warm-up
  size_t reps = 1;
  for (;;) {
    etsc::Stopwatch timer;
    for (size_t r = 0; r < reps; ++r) fn();
    const double elapsed = timer.Seconds();
    if (elapsed > 0.05 || reps >= (1u << 22)) {
      return elapsed * 1e9 / static_cast<double>(reps);
    }
    reps *= 2;
  }
}

/// Wall-clock of one CrossValidate of ECTS on a toy dataset at `width`.
double CrossValidateWallSeconds(size_t width) {
  etsc::SetMaxParallelism(width);
  const etsc::Dataset data = etsc::testing::MakeToyDataset(25, 40);
  etsc::EctsClassifier ects{etsc::EctsOptions{}};
  etsc::EvaluationOptions options;
  options.num_folds = 8;
  const etsc::EvaluationResult result =
      etsc::CrossValidate(data, ects, options);
  etsc::SetMaxParallelism(0);
  return result.wall_seconds;
}

/// Wall-clock of a fresh two-cell mini campaign (ECTS on two DodgerLoop
/// datasets) at `width`; the cache lives under /tmp so runs never collide
/// with a real campaign journal.
double CampaignWallSeconds(size_t width, const char* tag) {
  etsc::SetMaxParallelism(width);
  etsc::bench::CampaignConfig config;
  config.algorithms = {"ECTS"};
  config.datasets = {"DodgerLoopGame", "DodgerLoopWeekend"};
  config.folds = 2;
  config.height_scale = 1.0;
  config.cache_path = std::string("/tmp/etsc_bench_parallel_") + tag + ".csv";
  std::remove(config.cache_path.c_str());
  etsc::Stopwatch timer;
  etsc::bench::Campaign campaign(config);
  campaign.Run();
  const double wall = timer.Seconds();
  std::remove(config.cache_path.c_str());
  etsc::SetMaxParallelism(0);
  return wall;
}

void WriteParallelBench(const char* path) {
  const auto pattern = RandomSeries(16, 5);
  const auto series = RandomSeries(4096, 6);
  const auto vec_a = RandomSeries(512, 7);
  const auto vec_b = RandomSeries(512, 8);

  const double legacy_minsub_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(LegacyMinSubseriesDistance(pattern, series));
  });
  const double sq_minsub_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(etsc::MinSubseriesDistanceSq(pattern, series));
  });
  const double legacy_prefix_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(LegacyEuclideanPrefix(vec_a, vec_b, vec_a.size()));
  });
  const double sq_prefix_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(
        etsc::EuclideanPrefixSq(vec_a, vec_b, vec_a.size()));
  });

  constexpr size_t kThreads = 8;
  const double cv_serial = CrossValidateWallSeconds(1);
  const double cv_parallel = CrossValidateWallSeconds(kThreads);
  const double campaign_serial = CampaignWallSeconds(1, "serial");
  const double campaign_parallel = CampaignWallSeconds(kThreads, "parallel");

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"requested_threads\": %zu,\n"
               "  \"kernels\": {\n"
               "    \"min_subseries_legacy_ns\": %.1f,\n"
               "    \"min_subseries_sq_ns\": %.1f,\n"
               "    \"min_subseries_speedup\": %.3f,\n"
               "    \"euclidean_prefix_legacy_ns\": %.1f,\n"
               "    \"euclidean_prefix_sq_ns\": %.1f,\n"
               "    \"euclidean_prefix_speedup\": %.3f\n"
               "  },\n"
               "  \"cross_validate_ects_8fold\": {\n"
               "    \"serial_wall_s\": %.4f,\n"
               "    \"parallel_wall_s\": %.4f,\n"
               "    \"speedup\": %.3f\n"
               "  },\n"
               "  \"campaign_2cells\": {\n"
               "    \"serial_wall_s\": %.4f,\n"
               "    \"parallel_wall_s\": %.4f,\n"
               "    \"speedup\": %.3f\n"
               "  }\n"
               "}\n",
               std::thread::hardware_concurrency(), kThreads,
               legacy_minsub_ns, sq_minsub_ns, legacy_minsub_ns / sq_minsub_ns,
               legacy_prefix_ns, sq_prefix_ns, legacy_prefix_ns / sq_prefix_ns,
               cv_serial, cv_parallel, cv_serial / cv_parallel,
               campaign_serial, campaign_parallel,
               campaign_serial / campaign_parallel);
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", path);
}

// ---------------------------------------------------------------------------
// BENCH_simd.json: explicit-vector kernels vs. the frozen pre-SIMD scalars
// ---------------------------------------------------------------------------

// The four baselines below are verbatim freezes of the hot-path
// implementations as they stood before the simd layer (PR "SoA + SIMD"),
// so the recorded speedups keep meaning even after the library versions
// evolve further.

double FrozenMinSubseriesSq(const std::vector<double>& pattern,
                            const std::vector<double>& series,
                            double best_sq) {
  const size_t m = pattern.size();
  if (m == 0 || series.size() < m) {
    return std::numeric_limits<double>::infinity();
  }
  const double* p = pattern.data();
  for (size_t start = 0; start + m <= series.size(); ++start) {
    const double* s = series.data() + start;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    size_t i = 0;
    bool abandoned = false;
    for (; i + 4 <= m; i += 4) {
      const double d0 = p[i] - s[i];
      const double d1 = p[i + 1] - s[i + 1];
      const double d2 = p[i + 2] - s[i + 2];
      const double d3 = p[i + 3] - s[i + 3];
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
      if ((s0 + s1) + (s2 + s3) >= best_sq) {
        abandoned = true;
        break;
      }
    }
    if (abandoned) continue;
    double sum = (s0 + s1) + (s2 + s3);
    for (; i < m; ++i) {
      const double d = p[i] - s[i];
      sum += d * d;
      if (sum >= best_sq) {
        abandoned = true;
        break;
      }
    }
    if (abandoned) continue;
    best_sq = sum;
    if (best_sq == 0.0) break;
  }
  return best_sq;
}

void FrozenMiniRocketApply(const std::vector<double>& pooled,
                           size_t kernel_index, size_t dilation,
                           std::vector<double>* out) {
  const size_t length = pooled.size();
  const auto& triple = etsc::MiniRocketKernelTriples()[kernel_index];
  const int d = static_cast<int>(dilation);
  const int half = 4 * d;
  for (size_t t = 0; t < length; ++t) {
    double sum = 0.0;
    for (int k = 0; k < 9; ++k) {
      const int src = static_cast<int>(t) - half + k * d;
      if (src < 0 || src >= static_cast<int>(length)) continue;
      double w = -1.0;
      if (static_cast<size_t>(k) == triple[0] ||
          static_cast<size_t>(k) == triple[1] ||
          static_cast<size_t>(k) == triple[2]) {
        w = 2.0;
      }
      sum += w * pooled[static_cast<size_t>(src)];
    }
    (*out)[t] = sum;
  }
}

std::vector<std::vector<double>> FrozenSlidingDft(
    const std::vector<double>& series, size_t window_size,
    size_t num_coefficients, bool drop_first) {
  std::vector<std::vector<double>> out;
  if (window_size == 0 || series.size() < window_size || num_coefficients == 0) {
    return out;
  }
  const size_t num_windows = series.size() - window_size + 1;
  out.reserve(num_windows);
  const size_t first = drop_first ? 1 : 0;
  const double inv_n = 1.0 / static_cast<double>(window_size);
  std::vector<double> re(num_coefficients, 0.0), im(num_coefficients, 0.0);
  for (size_t k = 0; k < num_coefficients; ++k) {
    const double w =
        -2.0 * std::numbers::pi * static_cast<double>(k + first) * inv_n;
    for (size_t t = 0; t < window_size; ++t) {
      const double angle = w * static_cast<double>(t);
      re[k] += series[t] * std::cos(angle);
      im[k] += series[t] * std::sin(angle);
    }
  }
  auto emit = [&]() {
    std::vector<double> coeffs;
    coeffs.reserve(2 * num_coefficients);
    for (size_t k = 0; k < num_coefficients; ++k) {
      coeffs.push_back(re[k] * inv_n);
      coeffs.push_back(im[k] * inv_n);
    }
    out.push_back(std::move(coeffs));
  };
  emit();
  for (size_t s = 1; s < num_windows; ++s) {
    const double x_out = series[s - 1];
    const double x_in = series[s + window_size - 1];
    for (size_t k = 0; k < num_coefficients; ++k) {
      const double theta =
          2.0 * std::numbers::pi * static_cast<double>(k + first) * inv_n;
      const double c = std::cos(theta), sn = std::sin(theta);
      const double re_new = re[k] + (x_in - x_out);
      const double im_new = im[k];
      re[k] = re_new * c - im_new * sn;
      im[k] = re_new * sn + im_new * c;
    }
    emit();
  }
  return out;
}

etsc::simd::SplitScanBest FrozenSplitScan(
    const std::vector<double>& xv, const std::vector<double>& gs,
    const std::vector<double>& hs, double total_g, double total_h,
    double parent_score, size_t min_leaf) {
  etsc::simd::SplitScanBest best;
  const size_t n = xv.size();
  double left_g = 0.0, left_h = 0.0;
  for (size_t pos = 0; pos + 1 < n; ++pos) {
    left_g += gs[pos];
    left_h += hs[pos];
    if (xv[pos] == xv[pos + 1]) continue;
    const size_t n_left = pos + 1;
    const size_t n_right = n - n_left;
    if (n_left < min_leaf || n_right < min_leaf) continue;
    const double right_g = total_g - left_g;
    const double right_h = total_h - left_h;
    if (left_h <= 0 || right_h <= 0) continue;
    const double score = left_g * left_g / left_h + right_g * right_g / right_h;
    const double gain = score - parent_score;
    if (gain > best.gain) {
      best.gain = gain;
      best.pos = pos;
    }
  }
  return best;
}

void WriteSimdBench(const char* path) {
  // MinSubseriesDistanceSq: m=64 pattern over n=4096 series, full scan (the
  // shapelet-scan shape EDSC produces).
  const auto pattern = RandomSeries(64, 21);
  const auto series = RandomSeries(4096, 22);
  const double minsub_base_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(FrozenMinSubseriesSq(
        pattern, series, std::numeric_limits<double>::infinity()));
  });
  const double minsub_simd_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(etsc::MinSubseriesDistanceSq(pattern, series));
  });

  // MiniROCKET kernel application: one kernel on a 4096-point pooled series.
  const auto pooled = RandomSeries(4096, 23);
  std::vector<double> conv(pooled.size(), 0.0);
  const double rocket_base_ns = NsPerOp([&] {
    FrozenMiniRocketApply(pooled, 42, 4, &conv);
    benchmark::DoNotOptimize(conv.data());
  });
  const double rocket_simd_ns = NsPerOp([&] {
    std::fill(conv.begin(), conv.end(), 0.0);
    etsc::MiniRocketApplyKernel(pooled, 42, 4, conv);
    benchmark::DoNotOptimize(conv.data());
  });

  // Sliding DFT (the WEASEL/SFA windowed transform): 2048 points, window 32,
  // 16 coefficients.
  const auto sfa_series = RandomSeries(2048, 24);
  const double dft_base_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(FrozenSlidingDft(sfa_series, 32, 16, true));
  });
  const double dft_simd_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(etsc::SlidingDft(sfa_series, 32, 16, true));
  });

  // GBDT split scan: one feature of 4096 sorted values, unit hessians.
  const size_t n = 4096;
  std::vector<double> xv = RandomSeries(n, 25);
  std::sort(xv.begin(), xv.end());
  const std::vector<double> gs = RandomSeries(n, 26);
  const std::vector<double> hs(n, 1.0);
  double total_g = 0.0, total_h = 0.0;
  std::vector<double> pg(n), ph(n);
  for (size_t i = 0; i < n; ++i) {
    total_g += gs[i];
    total_h += hs[i];
    pg[i] = total_g;
    ph[i] = total_h;
  }
  const double parent_score = total_g * total_g / total_h;
  const double split_base_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(
        FrozenSplitScan(xv, gs, hs, total_g, total_h, parent_score, 5));
  });
  const double split_simd_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(etsc::simd::SplitScan(
        xv.data(), pg.data(), ph.data(), n, total_g, total_h, parent_score, 5));
  });

  const char* simd_env = std::getenv("ETSC_SIMD");
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"isa_compiled\": \"%s\",\n"
               "  \"isa_active\": \"%s\",\n"
               "  \"etsc_simd_env\": \"%s\",\n"
               "  \"kernels\": {\n"
               "    \"min_subseries_sq\": {\"baseline_ns\": %.1f, "
               "\"simd_ns\": %.1f, \"speedup\": %.3f},\n"
               "    \"minirocket_apply\": {\"baseline_ns\": %.1f, "
               "\"simd_ns\": %.1f, \"speedup\": %.3f},\n"
               "    \"sliding_dft\": {\"baseline_ns\": %.1f, "
               "\"simd_ns\": %.1f, \"speedup\": %.3f},\n"
               "    \"gbdt_split_scan\": {\"baseline_ns\": %.1f, "
               "\"simd_ns\": %.1f, \"speedup\": %.3f}\n"
               "  }\n"
               "}\n",
               etsc::simd::CompiledIsa(), etsc::simd::ActiveIsa(),
               simd_env == nullptr ? "" : simd_env,
               minsub_base_ns, minsub_simd_ns, minsub_base_ns / minsub_simd_ns,
               rocket_base_ns, rocket_simd_ns, rocket_base_ns / rocket_simd_ns,
               dft_base_ns, dft_simd_ns, dft_base_ns / dft_simd_ns,
               split_base_ns, split_simd_ns, split_base_ns / split_simd_ns);
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* out = std::getenv("ETSC_BENCH_PARALLEL_OUT");
  if (out == nullptr) out = "BENCH_parallel.json";
  if (*out != '\0') WriteParallelBench(out);
  const char* simd_out = std::getenv("ETSC_BENCH_SIMD_OUT");
  if (simd_out == nullptr) simd_out = "BENCH_simd.json";
  if (*simd_out != '\0') WriteSimdBench(simd_out);
  return 0;
}
