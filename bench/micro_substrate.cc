// Google-benchmark microbenchmarks of the ML substrate kernels behind the
// ETSC algorithms: sliding DFT, SFA words, WEASEL/MiniROCKET transforms,
// k-means, subseries distance, GBDT and the LSTM forward pass.
//
// The custom main additionally measures the parallel substrate (squared
// kernels vs. the legacy scalar loops; serial vs. pooled CrossValidate and
// campaign) and writes the numbers to BENCH_parallel.json (path overridable
// via ETSC_BENCH_PARALLEL_OUT; empty to skip).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "algos/ects.h"
#include "bench/bench_common.h"
#include "core/evaluation.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "ml/distance.h"
#include "ml/fourier.h"
#include "ml/gbdt.h"
#include "ml/kmeans.h"
#include "ml/nn/lstm.h"
#include "ml/sfa.h"
#include "tests/test_util.h"
#include "tsc/minirocket.h"
#include "tsc/weasel.h"

namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  etsc::Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.Gaussian();
  return out;
}

void BM_SlidingDft(benchmark::State& state) {
  const auto series = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(etsc::SlidingDft(series, 32, 4, true));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SlidingDft)->Range(128, 2048)->Complexity(benchmark::oN);

void BM_SfaWord(benchmark::State& state) {
  etsc::Rng rng(2);
  std::vector<std::vector<double>> windows(64);
  std::vector<int> labels(64);
  for (size_t i = 0; i < windows.size(); ++i) {
    windows[i] = RandomSeries(32, 100 + i);
    labels[i] = static_cast<int>(i % 2);
  }
  etsc::Sfa sfa;
  (void)sfa.Fit(windows, labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfa.Word(windows[0]));
  }
}
BENCHMARK(BM_SfaWord);

void BM_WeaselFit(benchmark::State& state) {
  const etsc::Dataset data =
      etsc::testing::MakeToyDataset(static_cast<size_t>(state.range(0)), 64);
  for (auto _ : state) {
    etsc::WeaselClassifier model;
    benchmark::DoNotOptimize(model.Fit(data));
  }
}
BENCHMARK(BM_WeaselFit)->Arg(10)->Arg(20)->Arg(40);

void BM_MiniRocketTransform(benchmark::State& state) {
  const etsc::Dataset data = etsc::testing::MakeToyDataset(10, 128);
  etsc::MiniRocketClassifier model;
  (void)model.Fit(data);
  const etsc::TimeSeries& ts = data.instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Transform(ts));
  }
}
BENCHMARK(BM_MiniRocketTransform);

void BM_KMeans(benchmark::State& state) {
  etsc::Rng gen(3);
  std::vector<std::vector<double>> points(static_cast<size_t>(state.range(0)));
  for (auto& p : points) p = RandomSeries(16, gen.engine()());
  for (auto _ : state) {
    etsc::Rng rng(4);
    etsc::KMeansOptions options;
    options.num_clusters = 3;
    benchmark::DoNotOptimize(etsc::KMeansFit(points, options, &rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KMeans)->Range(64, 1024)->Complexity(benchmark::oN);

void BM_MinSubseriesDistance(benchmark::State& state) {
  const auto pattern = RandomSeries(16, 5);
  const auto series = RandomSeries(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(etsc::MinSubseriesDistance(pattern, series));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinSubseriesDistance)->Range(128, 4096)->Complexity(benchmark::oN);

void BM_MinSubseriesDistanceSq(benchmark::State& state) {
  const auto pattern = RandomSeries(16, 5);
  const auto series = RandomSeries(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(etsc::MinSubseriesDistanceSq(pattern, series));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinSubseriesDistanceSq)
    ->Range(128, 4096)
    ->Complexity(benchmark::oN);

void BM_GbdtFit(benchmark::State& state) {
  etsc::Rng gen(7);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> x(n);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = RandomSeries(8, 200 + i);
    y[i] = x[i][0] > 0 ? 1 : 0;
  }
  etsc::GbdtOptions options;
  options.num_rounds = 10;
  for (auto _ : state) {
    etsc::GbdtClassifier model(options);
    benchmark::DoNotOptimize(model.Fit(x, y, nullptr));
  }
}
BENCHMARK(BM_GbdtFit)->Arg(64)->Arg(256);

void BM_LstmForward(benchmark::State& state) {
  etsc::Rng rng(8);
  etsc::nn::Lstm lstm(32, 16, &rng);
  std::vector<std::vector<std::vector<double>>> input(
      4, std::vector<std::vector<double>>(static_cast<size_t>(state.range(0))));
  for (auto& seq : input) {
    for (auto& step : seq) step = RandomSeries(32, 300);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Forward(input));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LstmForward)->Range(4, 64)->Complexity(benchmark::oN);

// ---------------------------------------------------------------------------
// BENCH_parallel.json: squared-kernel and thread-pool speedups
// ---------------------------------------------------------------------------

// Legacy scalar loops, frozen here as the baseline the squared kernels are
// measured against (the library versions now delegate to the unrolled code).
double LegacyEuclideanPrefix(const std::vector<double>& a,
                             const std::vector<double>& b, size_t len) {
  len = std::min({len, a.size(), b.size()});
  double sum = 0.0;
  for (size_t i = 0; i < len; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double LegacyMinSubseriesDistance(const std::vector<double>& pattern,
                                  const std::vector<double>& series) {
  const size_t m = pattern.size();
  if (m == 0 || series.size() < m) {
    return std::numeric_limits<double>::infinity();
  }
  double best_sq = std::numeric_limits<double>::infinity();
  for (size_t start = 0; start + m <= series.size(); ++start) {
    double sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double d = pattern[i] - series[start + i];
      sum += d * d;
      if (sum >= best_sq) break;
    }
    best_sq = std::min(best_sq, sum);
    if (best_sq == 0.0) break;
  }
  return std::sqrt(best_sq);
}

/// Wall-clock ns per call of `fn`, doubling the repetition count until the
/// measurement window exceeds 50ms.
template <typename Fn>
double NsPerOp(Fn&& fn) {
  fn();  // warm-up
  size_t reps = 1;
  for (;;) {
    etsc::Stopwatch timer;
    for (size_t r = 0; r < reps; ++r) fn();
    const double elapsed = timer.Seconds();
    if (elapsed > 0.05 || reps >= (1u << 22)) {
      return elapsed * 1e9 / static_cast<double>(reps);
    }
    reps *= 2;
  }
}

/// Wall-clock of one CrossValidate of ECTS on a toy dataset at `width`.
double CrossValidateWallSeconds(size_t width) {
  etsc::SetMaxParallelism(width);
  const etsc::Dataset data = etsc::testing::MakeToyDataset(25, 40);
  etsc::EctsClassifier ects{etsc::EctsOptions{}};
  etsc::EvaluationOptions options;
  options.num_folds = 8;
  const etsc::EvaluationResult result =
      etsc::CrossValidate(data, ects, options);
  etsc::SetMaxParallelism(0);
  return result.wall_seconds;
}

/// Wall-clock of a fresh two-cell mini campaign (ECTS on two DodgerLoop
/// datasets) at `width`; the cache lives under /tmp so runs never collide
/// with a real campaign journal.
double CampaignWallSeconds(size_t width, const char* tag) {
  etsc::SetMaxParallelism(width);
  etsc::bench::CampaignConfig config;
  config.algorithms = {"ECTS"};
  config.datasets = {"DodgerLoopGame", "DodgerLoopWeekend"};
  config.folds = 2;
  config.height_scale = 1.0;
  config.cache_path = std::string("/tmp/etsc_bench_parallel_") + tag + ".csv";
  std::remove(config.cache_path.c_str());
  etsc::Stopwatch timer;
  etsc::bench::Campaign campaign(config);
  campaign.Run();
  const double wall = timer.Seconds();
  std::remove(config.cache_path.c_str());
  etsc::SetMaxParallelism(0);
  return wall;
}

void WriteParallelBench(const char* path) {
  const auto pattern = RandomSeries(16, 5);
  const auto series = RandomSeries(4096, 6);
  const auto vec_a = RandomSeries(512, 7);
  const auto vec_b = RandomSeries(512, 8);

  const double legacy_minsub_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(LegacyMinSubseriesDistance(pattern, series));
  });
  const double sq_minsub_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(etsc::MinSubseriesDistanceSq(pattern, series));
  });
  const double legacy_prefix_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(LegacyEuclideanPrefix(vec_a, vec_b, vec_a.size()));
  });
  const double sq_prefix_ns = NsPerOp([&] {
    benchmark::DoNotOptimize(
        etsc::EuclideanPrefixSq(vec_a, vec_b, vec_a.size()));
  });

  constexpr size_t kThreads = 8;
  const double cv_serial = CrossValidateWallSeconds(1);
  const double cv_parallel = CrossValidateWallSeconds(kThreads);
  const double campaign_serial = CampaignWallSeconds(1, "serial");
  const double campaign_parallel = CampaignWallSeconds(kThreads, "parallel");

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"requested_threads\": %zu,\n"
               "  \"kernels\": {\n"
               "    \"min_subseries_legacy_ns\": %.1f,\n"
               "    \"min_subseries_sq_ns\": %.1f,\n"
               "    \"min_subseries_speedup\": %.3f,\n"
               "    \"euclidean_prefix_legacy_ns\": %.1f,\n"
               "    \"euclidean_prefix_sq_ns\": %.1f,\n"
               "    \"euclidean_prefix_speedup\": %.3f\n"
               "  },\n"
               "  \"cross_validate_ects_8fold\": {\n"
               "    \"serial_wall_s\": %.4f,\n"
               "    \"parallel_wall_s\": %.4f,\n"
               "    \"speedup\": %.3f\n"
               "  },\n"
               "  \"campaign_2cells\": {\n"
               "    \"serial_wall_s\": %.4f,\n"
               "    \"parallel_wall_s\": %.4f,\n"
               "    \"speedup\": %.3f\n"
               "  }\n"
               "}\n",
               std::thread::hardware_concurrency(), kThreads,
               legacy_minsub_ns, sq_minsub_ns, legacy_minsub_ns / sq_minsub_ns,
               legacy_prefix_ns, sq_prefix_ns, legacy_prefix_ns / sq_prefix_ns,
               cv_serial, cv_parallel, cv_serial / cv_parallel,
               campaign_serial, campaign_parallel,
               campaign_serial / campaign_parallel);
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* out = std::getenv("ETSC_BENCH_PARALLEL_OUT");
  if (out == nullptr) out = "BENCH_parallel.json";
  if (*out != '\0') WriteParallelBench(out);
  return 0;
}
