// Google-benchmark microbenchmarks of the ML substrate kernels behind the
// ETSC algorithms: sliding DFT, SFA words, WEASEL/MiniROCKET transforms,
// k-means, subseries distance, GBDT and the LSTM forward pass.

#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "ml/distance.h"
#include "ml/fourier.h"
#include "ml/gbdt.h"
#include "ml/kmeans.h"
#include "ml/nn/lstm.h"
#include "ml/sfa.h"
#include "tests/test_util.h"
#include "tsc/minirocket.h"
#include "tsc/weasel.h"

namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  etsc::Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.Gaussian();
  return out;
}

void BM_SlidingDft(benchmark::State& state) {
  const auto series = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(etsc::SlidingDft(series, 32, 4, true));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SlidingDft)->Range(128, 2048)->Complexity(benchmark::oN);

void BM_SfaWord(benchmark::State& state) {
  etsc::Rng rng(2);
  std::vector<std::vector<double>> windows(64);
  std::vector<int> labels(64);
  for (size_t i = 0; i < windows.size(); ++i) {
    windows[i] = RandomSeries(32, 100 + i);
    labels[i] = static_cast<int>(i % 2);
  }
  etsc::Sfa sfa;
  (void)sfa.Fit(windows, labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfa.Word(windows[0]));
  }
}
BENCHMARK(BM_SfaWord);

void BM_WeaselFit(benchmark::State& state) {
  const etsc::Dataset data =
      etsc::testing::MakeToyDataset(static_cast<size_t>(state.range(0)), 64);
  for (auto _ : state) {
    etsc::WeaselClassifier model;
    benchmark::DoNotOptimize(model.Fit(data));
  }
}
BENCHMARK(BM_WeaselFit)->Arg(10)->Arg(20)->Arg(40);

void BM_MiniRocketTransform(benchmark::State& state) {
  const etsc::Dataset data = etsc::testing::MakeToyDataset(10, 128);
  etsc::MiniRocketClassifier model;
  (void)model.Fit(data);
  const etsc::TimeSeries& ts = data.instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Transform(ts));
  }
}
BENCHMARK(BM_MiniRocketTransform);

void BM_KMeans(benchmark::State& state) {
  etsc::Rng gen(3);
  std::vector<std::vector<double>> points(static_cast<size_t>(state.range(0)));
  for (auto& p : points) p = RandomSeries(16, gen.engine()());
  for (auto _ : state) {
    etsc::Rng rng(4);
    etsc::KMeansOptions options;
    options.num_clusters = 3;
    benchmark::DoNotOptimize(etsc::KMeansFit(points, options, &rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KMeans)->Range(64, 1024)->Complexity(benchmark::oN);

void BM_MinSubseriesDistance(benchmark::State& state) {
  const auto pattern = RandomSeries(16, 5);
  const auto series = RandomSeries(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(etsc::MinSubseriesDistance(pattern, series));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinSubseriesDistance)->Range(128, 4096)->Complexity(benchmark::oN);

void BM_GbdtFit(benchmark::State& state) {
  etsc::Rng gen(7);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> x(n);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = RandomSeries(8, 200 + i);
    y[i] = x[i][0] > 0 ? 1 : 0;
  }
  etsc::GbdtOptions options;
  options.num_rounds = 10;
  for (auto _ : state) {
    etsc::GbdtClassifier model(options);
    benchmark::DoNotOptimize(model.Fit(x, y, nullptr));
  }
}
BENCHMARK(BM_GbdtFit)->Arg(64)->Arg(256);

void BM_LstmForward(benchmark::State& state) {
  etsc::Rng rng(8);
  etsc::nn::Lstm lstm(32, 16, &rng);
  std::vector<std::vector<std::vector<double>>> input(
      4, std::vector<std::vector<double>>(static_cast<size_t>(state.range(0))));
  for (auto& seq : input) {
    for (auto& step : seq) step = RandomSeries(32, 300);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Forward(input));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LstmForward)->Range(4, 64)->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
