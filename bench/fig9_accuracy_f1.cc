// Reproduces paper Figure 9: mean accuracy and F1-score per dataset category
// for every algorithm (stratified CV, per-category averaging per Sec. 6.2.1).

#include "bench/bench_common.h"

int main() {
  etsc::bench::Campaign campaign;
  campaign.Run();
  etsc::bench::PrintCategoryTable(campaign, "Figure 9a: Accuracy per category",
                                  etsc::bench::CellAccuracy);
  etsc::bench::PrintCategoryTable(campaign, "Figure 9b: F1-score per category",
                                  etsc::bench::CellF1);
  return 0;
}
