// Reproduces the paper's Sec. 6.3 life-sciences claim: ETSC identifies ~65%
// of non-interesting tumor simulations early, freeing the compute they would
// have consumed. Replays the early-termination policy over held-out
// simulations for the strongest algorithms on the Biological dataset.

#include <cstdio>
#include <memory>

#include "algos/ecec.h"
#include "algos/strut.h"
#include "core/voting.h"
#include "data/biological_sim.h"

namespace {

struct PolicyOutcome {
  size_t boring_total = 0;
  size_t boring_early = 0;
  size_t interesting_killed = 0;
  double saved_fraction = 0.0;
};

PolicyOutcome Replay(etsc::EarlyClassifier* model, const etsc::Dataset& test) {
  PolicyOutcome outcome;
  double total = 0.0, spent = 0.0;
  for (size_t i = 0; i < test.size(); ++i) {
    const etsc::TimeSeries& run = test.instance(i);
    auto pred = model->PredictEarly(run);
    if (!pred.ok()) continue;
    total += static_cast<double>(run.length());
    const bool boring = test.label(i) == 0;
    const bool predicted_boring = pred->label == 0;
    const bool early = pred->prefix_length < run.length();
    if (boring) ++outcome.boring_total;
    if (predicted_boring && early) {
      spent += static_cast<double>(pred->prefix_length);
      if (boring) ++outcome.boring_early;
      if (!boring) ++outcome.interesting_killed;
    } else {
      spent += static_cast<double>(run.length());
    }
  }
  outcome.saved_fraction = total > 0.0 ? 1.0 - spent / total : 0.0;
  return outcome;
}

}  // namespace

int main() {
  etsc::BiologicalSimOptions sim;
  sim.num_simulations = 400;
  const etsc::Dataset dataset = etsc::MakeBiologicalDataset(sim);
  etsc::Rng rng(5);
  const etsc::SplitIndices split = etsc::StratifiedSplit(dataset, 0.7, &rng);
  etsc::Dataset train = dataset.Subset(split.train);
  etsc::Dataset test = dataset.Subset(split.test);

  std::printf("== Sec. 6.3: early termination of biological simulations ==\n");
  std::printf("%zu simulations (%.0f%% interesting); policy: terminate a run "
              "once predicted non-interesting before completion.\n",
              dataset.size(), 100.0 * 0.2);
  std::printf("%-12s %22s %18s %12s\n", "algorithm",
              "boring found early", "interesting killed", "compute saved");

  {
    etsc::EcecOptions options;
    options.num_prefixes = 12;
    auto model = etsc::WrapForDataset(
        std::make_unique<etsc::EcecClassifier>(options), train);
    if (model->Fit(train).ok()) {
      const PolicyOutcome o = Replay(model.get(), test);
      std::printf("%-12s %10zu/%zu (%3.0f%%) %18zu %11.1f%%\n", "ECEC+vote",
                  o.boring_early, o.boring_total,
                  100.0 * o.boring_early / std::max<size_t>(o.boring_total, 1),
                  o.interesting_killed, 100.0 * o.saved_fraction);
    }
  }
  {
    auto model = etsc::MakeStrutMiniRocket();
    if (model->Fit(train).ok()) {
      const PolicyOutcome o = Replay(model.get(), test);
      std::printf("%-12s %10zu/%zu (%3.0f%%) %18zu %11.1f%%\n", "S-MINI",
                  o.boring_early, o.boring_total,
                  100.0 * o.boring_early / std::max<size_t>(o.boring_total, 1),
                  o.interesting_killed, 100.0 * o.saved_fraction);
    }
  }
  std::printf("\nPaper reference: 65%% of non-interesting simulations "
              "identified early (Sec. 6.3).\n");
  return 0;
}
