// Reproduces paper Table 3: dataset characteristics and category memberships.
// Profiles are canonical (paper-sized heights) even when the evaluation
// campaign runs on scaled-down instance counts.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using etsc::AllDatasetCategories;
  using etsc::DatasetCategoryName;

  const etsc::bench::CampaignConfig config =
      etsc::bench::CampaignConfig::FromEnv();
  etsc::RepositoryOptions repo;
  repo.seed = config.seed;
  repo.height_scale = config.height_scale;
  repo.maritime_windows = config.maritime_windows;

  std::printf("== Table 3: dataset characteristics ==\n");
  std::printf("%-22s %7s %7s %5s %8s %7s %7s |", "dataset", "height", "length",
              "vars", "classes", "CoV", "CIR");
  for (auto category : AllDatasetCategories()) {
    std::printf(" %-5.5s", DatasetCategoryName(category).c_str());
  }
  std::printf("\n");

  for (const auto& name : config.datasets) {
    auto benchmark = etsc::MakeBenchmarkDataset(name, repo);
    if (!benchmark.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   benchmark.status().ToString().c_str());
      continue;
    }
    const etsc::DatasetProfile& p = benchmark->canonical_profile;
    std::printf("%-22s %7zu %7zu %5zu %8zu %7.2f %7.2f |", p.name.c_str(),
                p.height, p.length, p.num_variables, p.num_classes, p.cov,
                p.cir);
    for (auto category : AllDatasetCategories()) {
      std::printf(" %-5s", p.IsIn(category) ? "  x" : "");
    }
    std::printf("\n");
  }
  std::printf("\nThresholds (Sec. 5.4): Wide length>1300, Large height>1000, "
              "Unstable CoV>1.08, Imbalanced CIR>1.73, Multiclass classes>2.\n");
  return 0;
}
