// Reproduces paper Table 4: the parameter values every campaign bench uses,
// echoed from the live option structs so the printout cannot drift from the
// code.

#include <cstdio>

#include "algos/ecec.h"
#include "algos/economy_k.h"
#include "algos/ects.h"
#include "algos/edsc.h"
#include "algos/strut.h"
#include "algos/teaser.h"
#include "bench/bench_common.h"

int main() {
  std::printf("== Table 4: parameter values of ETSC algorithms ==\n");

  etsc::EcecOptions ecec;
  std::printf("ECEC       N = %zu, a = %.1f\n", ecec.num_prefixes, ecec.alpha);

  etsc::EconomyKOptions eco;
  std::printf("ECONOMY-K  k = {");
  for (size_t i = 0; i < eco.cluster_grid.size(); ++i) {
    std::printf("%s%zu", i ? ", " : "", eco.cluster_grid[i]);
  }
  std::printf("}, lambda = %.0f, cost = %.3f\n", eco.lambda, eco.time_cost);

  etsc::EctsOptions ects;
  std::printf("ECTS       support = %zu\n", ects.support);

  etsc::EdscOptions edsc;
  std::printf("EDSC       CHE, k = %.0f, minLen = %zu, maxLen = L*%.1f\n",
              edsc.chebyshev_k, edsc.min_length, edsc.max_length_fraction);

  etsc::TeaserOptions teaser;
  std::printf("TEASER     S: %zu for UCR, 10 for Biological/Maritime; "
              "v grid 1..%zu; z-norm %s\n",
              teaser.num_prefixes, teaser.max_consecutive,
              teaser.z_normalize ? "on" : "off (paper variant)");

  etsc::StrutOptions strut;
  std::printf("S-MLSTM    truncation grid {");
  for (size_t i = 0; i < strut.fractions.size(); ++i) {
    std::printf("%s%.2f", i ? ", " : "", strut.fractions[i]);
  }
  std::printf("} x L, LSTM cells per MlstmOptions\n");

  const auto config = etsc::bench::CampaignConfig::FromEnv();
  std::printf("\nCampaign protocol: stratified %zu-fold CV, train budget "
              "%.0f s/fold (stand-in for the 48 h cut-off), dataset height "
              "scale %.2f.\n",
              config.folds, config.train_budget_seconds, config.height_scale);
  return 0;
}
