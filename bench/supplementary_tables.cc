// Per-dataset result tables — the analogue of the paper's supplementary
// material (the per-category figures 9-12 average over these). Reads the
// shared campaign cache; cells still missing are computed.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  etsc::bench::Campaign campaign;
  campaign.Run();

  for (const auto& profile : campaign.profiles()) {
    std::printf("\n== %s (height %zu, length %zu, %zu vars, %zu classes) ==\n",
                profile.name.c_str(), profile.height, profile.length,
                profile.num_variables, profile.num_classes);
    std::printf("%-10s %9s %9s %10s %9s %12s %14s\n", "algorithm", "accuracy",
                "f1", "earliness", "hm", "train(min)", "test(s/inst)");
    for (const auto& algorithm : campaign.config().algorithms) {
      const auto* cell = campaign.Find(algorithm, profile.name);
      if (cell == nullptr) continue;
      if (!cell->trained) {
        std::printf("%-10s %9s (%s)\n", algorithm.c_str(), "DNF",
                    cell->failure.c_str());
        continue;
      }
      std::printf("%-10s %9.3f %9.3f %10.3f %9.3f %12.4f %14.6f\n",
                  algorithm.c_str(), cell->accuracy, cell->f1, cell->earliness,
                  cell->harmonic_mean, cell->train_seconds / 60.0,
                  cell->test_seconds_per_instance);
    }
  }
  return 0;
}
