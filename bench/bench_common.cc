#include "bench/bench_common.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>

#include "algos/ecec.h"
#include "algos/economy_k.h"
#include "algos/ects.h"
#include "algos/edsc.h"
#include "algos/registrations.h"
#include "algos/strut.h"
#include "algos/teaser.h"
#include "core/composed.h"
#include <chrono>
#include <thread>

#include "core/counters.h"
#include "core/evaluation.h"
#include "core/fabric.h"
#include "core/fault.h"
#include "core/json.h"
#include "core/log.h"
#include "core/model_cache.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "core/trace.h"

namespace etsc::bench {

namespace {

std::string GetEnvOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : value;
}

/// True when `rest` holds only trailing whitespace after a strtod/strtoull
/// parse — "30 " is fine, "30x" and "" (nothing parsed) are not.
bool OnlyTrailingSpace(const char* rest) {
  if (rest == nullptr) return false;
  while (*rest != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*rest))) return false;
    ++rest;
  }
  return true;
}

/// Validated numeric override: a value bare strtod would silently turn into
/// 0 ("five", "", "1.5x") instead warns and keeps the default.
double GetEnvOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (end == value || !OnlyTrailingSpace(end) || errno == ERANGE) {
    Logf(LogLevel::kWarn, "campaign",
         "%s=\"%s\" is not a number; using the default (%g)", name, value,
         fallback);
    return fallback;
  }
  return parsed;
}

size_t GetEnvSizeOr(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const char* p = value;
  while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(p, &end, 10);
  // strtoull wraps negatives ("-3" parses as a huge value): reject the sign.
  if (*p == '-' || end == p || !OnlyTrailingSpace(end) || errno == ERANGE ||
      parsed > std::numeric_limits<size_t>::max()) {
    Logf(LogLevel::kWarn, "campaign",
         "%s=\"%s\" is not a non-negative integer; using the default (%zu)",
         name, value, fallback);
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

/// Parses "i/N" with 0 <= i < N into a shard selector.
bool ParseShard(const std::string& spec, size_t* index, size_t* count) {
  const size_t slash = spec.find('/');
  if (slash == std::string::npos) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long i = std::strtoull(spec.c_str(), &end, 10);
  if (end != spec.c_str() + slash || errno == ERANGE) return false;
  const char* n_begin = spec.c_str() + slash + 1;
  errno = 0;
  const unsigned long long n = std::strtoull(n_begin, &end, 10);
  if (end == n_begin || !OnlyTrailingSpace(end) || errno == ERANGE) return false;
  if (n == 0 || i >= n) return false;
  *index = static_cast<size_t>(i);
  *count = static_cast<size_t>(n);
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

const std::vector<std::string>& PaperAlgorithms() {
  static const auto* kAlgorithms = new std::vector<std::string>{
      "ECEC", "ECO-K", "ECTS", "EDSC", "TEASER", "S-MINI", "S-MLSTM", "S-WEASEL"};
  return *kAlgorithms;
}

CampaignConfig CampaignConfig::FromEnv() {
  CampaignConfig config;
  config.height_scale = GetEnvOr("ETSC_BENCH_SCALE", config.height_scale);
  config.folds = GetEnvSizeOr("ETSC_BENCH_FOLDS", config.folds);
  config.train_budget_seconds =
      GetEnvOr("ETSC_BENCH_BUDGET", config.train_budget_seconds);
  config.predict_budget_seconds =
      GetEnvOr("ETSC_BENCH_PREDICT_BUDGET", config.predict_budget_seconds);
  config.maritime_windows =
      GetEnvSizeOr("ETSC_BENCH_MARITIME", config.maritime_windows);
  config.cost_alpha = GetEnvOr("ETSC_BENCH_ALPHA", config.cost_alpha);
  const std::string algos = GetEnvOr("ETSC_BENCH_ALGOS", "");
  config.algorithms = algos.empty() ? PaperAlgorithms() : SplitCommas(algos);
  const std::string datasets = GetEnvOr("ETSC_BENCH_DATASETS", "");
  config.datasets =
      datasets.empty() ? BenchmarkDatasetNames() : SplitCommas(datasets);
  config.cache_path =
      GetEnvOr("ETSC_BENCH_CACHE", std::string("etsc_campaign_cache.csv"));
  config.report_path = GetEnvOr("ETSC_BENCH_REPORT", std::string());
  config.report_only = !GetEnvOr("ETSC_BENCH_REPORT_ONLY", std::string()).empty();
  const std::string shard = GetEnvOr("ETSC_BENCH_SHARD", std::string());
  if (!shard.empty() && !ParseShard(shard, &config.shard_index,
                                    &config.shard_count)) {
    Logf(LogLevel::kWarn, "campaign",
         "ETSC_BENCH_SHARD=\"%s\" is not \"i/N\" with 0 <= i < N; running "
         "the whole campaign",
         shard.c_str());
  }
  config.supervisor = SupervisorOptions::FromEnv();
  config.fault_spec = GetEnvOr("ETSC_BENCH_FAULT", std::string());
  return config;
}

std::string CampaignConfig::Fingerprint() const {
  // retries and quarantine_after are part of the identity: they decide which
  // cells recover and which are skipped, so journals written under different
  // supervision must not merge. Backoff delay and watchdog grace only shape
  // wall-clock timing and stay out (like the shard selector and fault spec).
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "v%d scale=%.3f folds=%zu budget=%.0f pbudget=%.0f "
                "maritime=%zu seed=%llu retries=%d quarantine=%d",
                kJournalFormatVersion, height_scale, folds, train_budget_seconds,
                predict_budget_seconds, maritime_windows,
                static_cast<unsigned long long>(seed),
                supervisor.retry.max_retries, supervisor.quarantine_after);
  return buf;
}

Result<std::unique_ptr<EarlyClassifier>> MakePaperAlgorithm(
    const std::string& algorithm, const std::string& dataset_name,
    size_t series_length) {
  const bool new_dataset =
      dataset_name == "Biological" || dataset_name == "Maritime";
  if (algorithm == "ECEC") {
    EcecOptions options;  // N = 20, alpha = 0.8 (Table 4 defaults)
    // Implementation parameter (not in Table 4): fewer WEASEL window sizes so
    // N x (cv+1) pipeline fits stay inside the single-core budget.
    options.weasel.max_window_count = 12;
    return std::unique_ptr<EarlyClassifier>(
        std::make_unique<EcecClassifier>(options));
  }
  if (algorithm == "ECO-K") {
    EconomyKOptions options;  // k in {1,2,3}, lambda = 100, cost = 0.001
    return std::unique_ptr<EarlyClassifier>(
        std::make_unique<EconomyKClassifier>(options));
  }
  if (algorithm == "ECTS") {
    EctsOptions options;  // support = 0
    return std::unique_ptr<EarlyClassifier>(
        std::make_unique<EctsClassifier>(options));
  }
  if (algorithm == "EDSC") {
    EdscOptions options;  // CHE, k = 3, minLen = 5, maxLen = L/2
    // Tractability scaling (documented in DESIGN.md): candidate subsampling
    // replaces the paper's 24-core / 48-hour budget.
    options.start_stride = std::max<size_t>(1, series_length / 64);
    options.length_stride = std::max<size_t>(1, series_length / 64);
    options.max_candidates = 1500;
    return std::unique_ptr<EarlyClassifier>(
        std::make_unique<EdscClassifier>(options));
  }
  if (algorithm == "TEASER") {
    TeaserOptions options;
    options.num_prefixes = new_dataset ? 10 : 20;  // Table 4
    options.weasel.max_window_count = 12;  // see ECEC note above
    return std::unique_ptr<EarlyClassifier>(
        std::make_unique<TeaserClassifier>(options));
  }
  if (algorithm == "S-MINI") return MakeStrutMiniRocket();
  if (algorithm == "S-MLSTM") {
    StrutOptions options;  // fixed fraction grid per Sec. 6.1
    return MakeStrutMlstm(options);
  }
  if (algorithm == "S-WEASEL") return MakeStrutWeasel(false);
  if (algorithm.find('+') != std::string::npos) {
    // Composed '<base>+<trigger>' spec: resolved through the base/trigger
    // registries, so the cross-product campaign needs no per-pair code here.
    RegisterBuiltinClassifiers();
    auto composed = MakeComposedFromSpec(algorithm);
    if (!composed.ok()) return composed.status();
    return std::unique_ptr<EarlyClassifier>(std::move(*composed));
  }
  std::string known;
  for (const auto& name : PaperAlgorithms()) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  return Status::NotFound(
      "unknown paper algorithm '" + algorithm + "' (known: " + known +
      "; composed '<base>+<trigger>' specs are also accepted, see "
      "etsc_cli --list)");
}

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {
  if (config_.shard_count > 1) {
    // Each shard owns a private journal + report; the merge step combines
    // them. Suffixing here (not in FromEnv) covers configs built in code too.
    const std::string suffix = ".shard-" + std::to_string(config_.shard_index) +
                               "-of-" + std::to_string(config_.shard_count);
    config_.cache_path += suffix;
    if (!config_.report_path.empty()) config_.report_path += suffix;
  }
}

RepositoryOptions Campaign::RepoOptions() const {
  RepositoryOptions repo;
  repo.seed = config_.seed;
  repo.height_scale = config_.height_scale;
  repo.maritime_windows = config_.maritime_windows;
  return repo;
}

namespace {

/// End-of-row sentinel appended as the final journal field. A row lacking it
/// was truncated by a crash mid-write and must be skipped, not half-parsed.
constexpr char kRowSentinel[] = ",#end";

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Order-sensitive FNV-1a combination of the generated datasets' content
/// hashes; part of the journal header so a journal written against different
/// data (e.g. another ETSC_BENCH_SCALE repository build) reads as stale.
uint64_t CombineDataFingerprints(const std::vector<uint64_t>& fingerprints) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const uint64_t fp : fingerprints) {
    for (int i = 0; i < 8; ++i) {
      h ^= (fp >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

// Campaign metrics (DESIGN.md sec 9): journalled rows and computed cells.
Counter& JournalAppends() {
  static Counter& c =
      MetricRegistry::Global().counter("campaign.journal_appends");
  return c;
}
Counter& CellsComputed() {
  static Counter& c =
      MetricRegistry::Global().counter("campaign.cells_computed");
  return c;
}

}  // namespace

std::string EscapeJournalField(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case ',':
        out += "\\c";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeJournalField(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 == escaped.size()) {
      out += escaped[i];
      continue;
    }
    switch (escaped[++i]) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 'c':
        out += ',';
        break;
      default:
        out += '\\';
        out += escaped[i];
    }
  }
  return out;
}

Result<std::string> JournalHeaderForConfig(const CampaignConfig& config) {
  RepositoryOptions repo;
  repo.seed = config.seed;
  repo.height_scale = config.height_scale;
  repo.maritime_windows = config.maritime_windows;
  std::vector<uint64_t> fingerprints;
  for (const auto& dataset_name : config.datasets) {
    auto benchmark = MakeBenchmarkDataset(dataset_name, repo);
    // Skipping a failed dataset mirrors Run(): both sides hash exactly the
    // datasets the campaign would evaluate.
    if (!benchmark.ok()) continue;
    fingerprints.push_back(benchmark->data.Fingerprint());
  }
  if (fingerprints.empty()) {
    return Status::NotFound(
        "journal header: no configured dataset could be generated");
  }
  return "# " + config.Fingerprint() +
         " data=" + Hex16(CombineDataFingerprints(fingerprints));
}

Status Campaign::LoadCache(const std::string& expected_header) {
  cache_state_ = CacheState::kMissing;
  std::ifstream in(config_.cache_path);
  if (!in) return Status::OK();
  std::string line;
  if (!std::getline(in, line) || line != expected_header) {
    // A journal claiming a NEWER format version is not "stale" — it is the
    // product of a newer build and may contain row kinds this binary would
    // misparse (e.g. control rows it does not know). Rotating it aside would
    // silently discard someone's results; refuse with marching orders.
    const int theirs = fabric::HeaderVersion(line);
    if (theirs > kJournalFormatVersion) {
      return Status::FailedPrecondition(
          "cache " + config_.cache_path + " was written by a newer build "
          "(journal format v" + std::to_string(theirs) +
          ", this binary reads up to v" +
          std::to_string(kJournalFormatVersion) +
          "): upgrade the binary, or delete/move the journal to recompute");
    }
    // Journal from another configuration (or a header truncated mid-write):
    // its rows must never be mixed with this config's. AppendCache rotates
    // the file aside before the first new row.
    cache_state_ = CacheState::kStale;
    Logf(LogLevel::kWarn, "campaign",
         "cache %s has a different fingerprint; it will be rotated to "
         "%s.stale before new results are journalled",
         config_.cache_path.c_str(), config_.cache_path.c_str());
    return Status::OK();
  }
  cache_state_ = CacheState::kLoaded;
  size_t skipped = 0;
  size_t duplicates = 0;
  // (algorithm, dataset) -> index into cells_. An interrupted-then-resumed
  // campaign can journal the same cell twice; the LAST row (the freshest
  // result) must win, or Find() would pin lookups to the oldest row forever.
  std::map<std::pair<std::string, std::string>, size_t> index;
  while (std::getline(in, line)) {
    const size_t sentinel_len = sizeof(kRowSentinel) - 1;
    if (!line.empty() && line[0] == '@') {
      continue;  // worker-fabric control row (lease / quarantine broadcast)
    }
    if (line.size() < sentinel_len ||
        line.compare(line.size() - sentinel_len, sentinel_len, kRowSentinel) !=
            0) {
      ++skipped;  // truncated by a mid-write crash; recomputed this run
      continue;
    }
    line.resize(line.size() - sentinel_len);
    std::stringstream ss(line);
    CampaignCell cell;
    std::string trained, field;
    if (!std::getline(ss, cell.algorithm, ',')) continue;
    if (!std::getline(ss, cell.dataset, ',')) continue;
    if (!std::getline(ss, trained, ',')) continue;
    cell.trained = trained == "1";
    auto read_double = [&](double* out) {
      if (!std::getline(ss, field, ',')) return false;
      *out = std::strtod(field.c_str(), nullptr);
      return true;
    };
    if (!read_double(&cell.accuracy)) continue;
    if (!read_double(&cell.f1)) continue;
    if (!read_double(&cell.earliness)) continue;
    if (!read_double(&cell.harmonic_mean)) continue;
    if (!read_double(&cell.train_seconds)) continue;
    if (!read_double(&cell.test_seconds_per_instance)) continue;
    if (!std::getline(ss, field, ',')) continue;
    cell.retries = static_cast<int>(std::strtol(field.c_str(), nullptr, 10));
    if (!std::getline(ss, field, ',')) continue;
    cell.quarantined = field == "1";
    std::getline(ss, cell.failure);
    cell.failure = UnescapeJournalField(cell.failure);
    const auto [it, inserted] =
        index.emplace(std::make_pair(cell.algorithm, cell.dataset),
                      cells_.size());
    if (inserted) {
      cells_.push_back(std::move(cell));
    } else {
      ++duplicates;
      cells_[it->second] = std::move(cell);
    }
  }
  if (skipped > 0) {
    Logf(LogLevel::kWarn, "campaign",
         "cache %s: skipped %zu truncated row(s) from an interrupted write; "
         "the cells will be recomputed",
         config_.cache_path.c_str(), skipped);
  }
  if (duplicates > 0) {
    Logf(LogLevel::kWarn, "campaign",
         "cache %s: collapsed %zu duplicate row(s) from a resumed campaign; "
         "the latest result for each cell wins",
         config_.cache_path.c_str(), duplicates);
  }
  return Status::OK();
}

std::string FormatJournalRow(const CampaignCell& cell) {
  std::ostringstream out;
  // max_digits10 so a resumed campaign reloads bit-identical scores.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  // The failure field is free-form text from a Status message: escaped so a
  // newline cannot tear the row and an embedded ",#end" cannot forge the
  // sentinel (every comma is escaped, and the sentinel starts with one).
  out << cell.algorithm << ',' << cell.dataset << ',' << (cell.trained ? 1 : 0)
      << ',' << cell.accuracy << ',' << cell.f1 << ',' << cell.earliness << ','
      << cell.harmonic_mean << ',' << cell.train_seconds << ','
      << cell.test_seconds_per_instance << ',' << cell.retries << ','
      << (cell.quarantined ? 1 : 0) << ','
      << EscapeJournalField(cell.failure) << kRowSentinel;
  return out.str();
}

void Campaign::AppendCache(const CampaignCell& cell) {
  TraceSpan span("campaign", "journal_append");
  if (MetricsEnabled()) JournalAppends().Add(1);
  if (cache_state_ == CacheState::kStale) {
    // Appending under a foreign header would make these rows silently
    // unloadable forever; move the old journal out of the way first.
    const std::string stale_path = config_.cache_path + ".stale";
    std::remove(stale_path.c_str());
    if (std::rename(config_.cache_path.c_str(), stale_path.c_str()) != 0) {
      // Rotation failed (e.g. cross-device): truncating is still safe — the
      // old rows were unloadable under this config anyway.
      std::ofstream(config_.cache_path, std::ios::trunc);
    }
    cache_state_ = CacheState::kMissing;
  }
  // A crash can leave the journal without a trailing newline; appending right
  // after the torn bytes would merge two rows into one sentinel-terminated,
  // silently corrupt line. Start on a fresh line instead — the torn fragment
  // then stays its own sentinel-less line, which the next load discards.
  bool needs_newline = false;
  {
    std::ifstream existing(config_.cache_path, std::ios::binary);
    if (existing && existing.seekg(-1, std::ios::end)) {
      char last = '\n';
      needs_newline = existing.get(last) && last != '\n';
    }
  }
  std::ofstream out(config_.cache_path, std::ios::app);
  if (!out) return;
  if (needs_newline) out << "\n";
  if (cache_state_ == CacheState::kMissing) {
    out << journal_header_ << "\n";
    cache_state_ = CacheState::kLoaded;
  }
  out << FormatJournalRow(cell) << "\n";
  // One cell can take hours; flush so a later crash costs at most the row
  // being written, which the sentinel check then discards.
  out.flush();
}

const CampaignCell* Campaign::Find(const std::string& algorithm,
                                   const std::string& dataset) const {
  for (const auto& cell : cells_) {
    if (cell.algorithm == algorithm && cell.dataset == dataset) return &cell;
  }
  return nullptr;
}

namespace {

/// One uncached (algorithm, dataset) cell scheduled on the thread pool. The
/// dataset pointer refers into a vector that outlives the task group; the
/// prototype is owned here so tasks never share mutable classifier state.
struct CellJob {
  const BenchmarkDataset* benchmark = nullptr;
  std::string algorithm;
  std::unique_ptr<EarlyClassifier> prototype;
  CampaignCell cell;
  double cpu_seconds = 0.0;
};

/// Wraps `classifier` in the fault decorator an ETSC_BENCH_FAULT entry
/// requests for `algorithm`; a prototype not named in the spec passes through
/// untouched. Entries are ALGO:KIND with an optional :k ("ECTS:flaky:2");
/// the first matching entry wins. Unknown kinds warn and inject nothing.
std::unique_ptr<EarlyClassifier> ApplyFaultSpec(
    const std::string& spec, const std::string& algorithm,
    std::unique_ptr<EarlyClassifier> classifier) {
  for (const std::string& entry : SplitCommas(spec)) {
    const size_t colon = entry.find(':');
    if (colon == std::string::npos || entry.substr(0, colon) != algorithm) {
      continue;
    }
    std::string kind = entry.substr(colon + 1);
    int k = 1;
    const size_t param = kind.find(':');
    if (param != std::string::npos) {
      k = std::max(1, std::atoi(kind.c_str() + param + 1));
      kind.resize(param);
    }
    if (kind == "flaky") {
      // Transient: each fold's Fit fails the first k attempts, then succeeds
      // — recoverable with ETSC_RETRY_MAX >= k, scores identical to clean.
      return std::make_unique<FlakyClassifier>(std::move(classifier), k);
    }
    if (kind == "crash") {
      // Deterministic kInternal on every Fit: fails fast (no retry) and
      // feeds the circuit breaker until the algorithm is quarantined.
      FaultOptions fault;
      fault.fit_failure_rate = 1.0;
      return std::make_unique<FaultyClassifier>(std::move(classifier), fault);
    }
    if (kind == "hang-fit" || kind == "hang-predict") {
      // Spins past its budget until the watchdog cancels (needs
      // ETSC_WATCHDOG_GRACE > 0 and a finite budget for that operation).
      HangOptions hang;
      hang.hang_fit = kind == "hang-fit";
      hang.hang_predict = kind == "hang-predict";
      return std::make_unique<HangingClassifier>(std::move(classifier), hang);
    }
    if (kind == "die-at") {
      // Abrupt process exit on this algorithm's k-th campaign cell: the
      // journal is left exactly as a SIGKILL would leave it (possibly with a
      // live lease row), which is what the worker-fabric crash drill needs.
      return std::make_unique<DieAtClassifier>(std::move(classifier), k);
    }
    Logf(LogLevel::kWarn, "campaign",
         "ETSC_BENCH_FAULT entry \"%s\": unknown fault kind \"%s\" (known: "
         "flaky[:k], crash, hang-fit, hang-predict, die-at[:k])",
         entry.c_str(), kind.c_str());
  }
  return classifier;
}

}  // namespace

Status Campaign::GenerateDatasets(std::vector<BenchmarkDataset>* benchmarks) {
  // Serial: generation draws from seeded RNGs, so it must not race or depend
  // on scheduling; cell tasks then capture const references into the vector
  // (satisfying the immutable-inputs contract of core/parallel.h). Runs
  // BEFORE any cache read: the journal header embeds the combined dataset
  // fingerprint, so the expected header is only known once the data exists.
  profiles_.clear();
  benchmarks->reserve(benchmarks->size() + config_.datasets.size());
  std::vector<uint64_t> data_fingerprints;
  for (const auto& dataset_name : config_.datasets) {
    auto benchmark = MakeBenchmarkDataset(dataset_name, RepoOptions());
    if (!benchmark.ok()) {
      Logf(LogLevel::kError, "campaign", "dataset %s failed: %s",
           dataset_name.c_str(), benchmark.status().ToString().c_str());
      continue;
    }
    profiles_.push_back(benchmark->canonical_profile);
    data_fingerprints.push_back(benchmark->data.Fingerprint());
    benchmarks->push_back(*std::move(benchmark));
  }
  if (benchmarks->empty()) {
    return Status::NotFound(
        "campaign: no configured dataset could be generated");
  }
  journal_header_ = "# " + config_.Fingerprint() +
                    " data=" + Hex16(CombineDataFingerprints(data_fingerprints));
  return Status::OK();
}

Status Campaign::Run() {
  TraceSpan run_span("campaign", "campaign_run");
  RunStats stats;
  Stopwatch total;
  Stopwatch phase;

  // Phase 1 (serial): generate every dataset once, in configuration order.
  std::vector<BenchmarkDataset> benchmarks;
  const Status generated = GenerateDatasets(&benchmarks);
  stats.generate_seconds = phase.Seconds();
  if (!generated.ok()) {
    Logf(LogLevel::kError, "campaign", "%s", generated.ToString().c_str());
    return generated;
  }

  phase.Restart();
  ETSC_RETURN_NOT_OK(LoadCache(journal_header_));
  stats.load_cache_seconds = phase.Seconds();
  stats.cells_loaded = cells_.size();

  // Phase 2 (serial): build the work list of uncached cells, dataset-major
  // like the reports. Prototypes are constructed here so an unknown
  // algorithm warns exactly once, in deterministic order.
  phase.Restart();
  std::vector<CellJob> jobs;
  for (size_t b = 0; b < benchmarks.size(); ++b) {
    const BenchmarkDataset& benchmark = benchmarks[b];
    const std::string& dataset_name = benchmark.canonical_profile.name;
    for (size_t a = 0; a < config_.algorithms.size(); ++a) {
      const std::string& algorithm = config_.algorithms[a];
      // Shard partition over the FULL dataset-major grid (before any cache
      // check), so every shard agrees on the assignment regardless of what
      // each has already journalled.
      const size_t grid_index = b * config_.algorithms.size() + a;
      if (config_.shard_count > 1 &&
          grid_index % config_.shard_count != config_.shard_index) {
        continue;
      }
      if (Find(algorithm, dataset_name) != nullptr) continue;  // cached
      if (config_.report_only) continue;  // reporting a running campaign
      auto prototype = MakePaperAlgorithm(algorithm, dataset_name,
                                          benchmark.data.MaxLength());
      if (!prototype.ok()) {
        Logf(LogLevel::kWarn, "campaign", "%s",
             prototype.status().ToString().c_str());
        continue;
      }
      CellJob job;
      job.benchmark = &benchmark;
      job.algorithm = algorithm;
      job.prototype = ApplyFaultSpec(config_.fault_spec, algorithm,
                                     std::move(*prototype));
      jobs.push_back(std::move(job));
    }
  }
  stats.plan_seconds = phase.Seconds();
  stats.cells_computed = jobs.size();

  if (jobs.empty()) {
    // Nothing to compute (fully cached or report-only): the report is still
    // written so downstream tooling always finds a fresh one after Run().
    stats.total_seconds = total.Seconds();
    WriteReport(stats);
    return Status::OK();
  }

  // Phase 3 (parallel): compute cells as one serial LANE per algorithm. Each
  // cell is seeded from config_.seed alone (CrossValidate splits per-fold
  // seeds before its own dispatch), so results are bit-identical to a serial
  // run; only the log lines and journal row order vary with scheduling.
  // Lanes keep the circuit breaker deterministic: an algorithm's failure
  // streak evolves in dataset order within its own lane, so which cells are
  // quarantined cannot depend on how threads interleave across algorithms.
  phase.Restart();
  // Resolved once and shared by every cell: with ETSC_MODEL_CACHE set, folds
  // whose fitted model is already on disk skip Fit entirely (counted as
  // eval.fits_skipped), which is what makes re-running shards cheap.
  const std::shared_ptr<const ModelCache> model_cache = ModelCache::FromEnv();
  CircuitBreaker breaker(config_.supervisor.quarantine_after);
  // Replay journalled outcomes into the breaker in dataset-major order so a
  // resumed campaign continues the same failure streaks a fresh run would
  // have accumulated; quarantine rows are skips, not evidence, and replaying
  // them would double-count.
  for (const auto& benchmark : benchmarks) {
    const std::string& dataset_name = benchmark.canonical_profile.name;
    for (const auto& algorithm : config_.algorithms) {
      const CampaignCell* cached = Find(algorithm, dataset_name);
      if (cached == nullptr || cached->quarantined) continue;
      if (cached->trained) {
        breaker.RecordSuccess(algorithm);
      } else {
        breaker.RecordFailure(algorithm, dataset_name);
      }
    }
  }
  // jobs is dataset-major; stable per-algorithm grouping keeps every lane's
  // cells in dataset order, which the breaker determinism argument needs.
  std::vector<std::vector<size_t>> lanes;
  {
    std::map<std::string, size_t> lane_of;
    for (size_t j = 0; j < jobs.size(); ++j) {
      const auto [it, inserted] = lane_of.emplace(jobs[j].algorithm, lanes.size());
      if (inserted) lanes.emplace_back();
      lanes[it->second].push_back(j);
    }
  }
  TaskGroup group;
  for (const auto& lane : lanes) {
    group.Run([this, &jobs, &model_cache, &breaker, &lane]() -> Status {
      for (const size_t j : lane) {
        CellJob& job = jobs[j];
        const std::string& dataset_name = job.benchmark->canonical_profile.name;
        CampaignCell& cell = job.cell;
        cell.algorithm = job.algorithm;
        cell.dataset = dataset_name;
        if (breaker.IsQuarantined(job.algorithm)) {
          // Never attempted: an explicit first-class row, so reports and
          // resumed campaigns can tell "skipped by the breaker" from
          // "tried and failed".
          cell.quarantined = true;
          cell.failure = Status::SkippedQuarantine(
                             job.algorithm +
                             " quarantined after repeated failures; "
                             "cell not attempted")
                             .ToString();
          {
            std::lock_guard<std::mutex> lock(journal_mu_);
            AppendCache(cell);
          }
          Logf(LogLevel::kWarn, "campaign", "  %s on %s: %s",
               job.algorithm.c_str(), dataset_name.c_str(),
               cell.failure.c_str());
          continue;
        }
        TraceSpan cell_span("campaign", [&] {
          return "cell:" + job.algorithm + "/" + dataset_name;
        });
        Logf(LogLevel::kInfo, "campaign", "%s on %s (%zu instances)...",
             job.algorithm.c_str(), dataset_name.c_str(),
             job.benchmark->data.size());

        EvaluationOptions options;
        options.num_folds = config_.folds;
        options.seed = config_.seed;
        options.train_budget_seconds = config_.train_budget_seconds;
        options.predict_budget_seconds = config_.predict_budget_seconds;
        options.model_cache = model_cache;
        options.retry = config_.supervisor.retry;
        options.watchdog_grace = config_.supervisor.watchdog_grace;
        const EvaluationResult result =
            CrossValidate(job.benchmark->data, *job.prototype, options);

        cell.trained = result.trained();
        // Surface the first failure — a Fit error on an untrained cell, or a
        // degraded prediction (e.g. predict deadline overrun) on a trained
        // one — and the total Fit retries the supervisor spent across folds.
        for (const auto& fold : result.folds) {
          cell.retries += std::max(0, fold.fit_attempts - 1);
          if (cell.failure.empty() && !fold.failure.empty()) {
            cell.failure = fold.failure;
          }
        }
        const EvalScores scores = result.MeanScores();
        cell.accuracy = scores.accuracy;
        cell.f1 = scores.f1;
        cell.earliness = scores.earliness;
        cell.harmonic_mean = scores.harmonic_mean;
        cell.train_seconds = result.MeanTrainSeconds();
        cell.test_seconds_per_instance = result.MeanTestSecondsPerInstance();
        job.cpu_seconds = result.CpuSeconds();
        if (cell.trained) {
          breaker.RecordSuccess(job.algorithm);
        } else {
          breaker.RecordFailure(job.algorithm, dataset_name);
        }
        if (MetricsEnabled()) CellsComputed().Add(1);
        {
          // The journal is shared by all cells; the lock keeps each flushed
          // row whole so a reload never sees interleaved fragments.
          std::lock_guard<std::mutex> lock(journal_mu_);
          AppendCache(cell);
        }
        Logf(LogLevel::kInfo, "campaign", "  %s on %s: %s",
             job.algorithm.c_str(), dataset_name.c_str(),
             cell.trained ? scores.ToString().c_str()
                          : ("DNF: " + cell.failure).c_str());
      }
      return Status::OK();
    });
  }
  const Status status = group.Wait();
  if (!status.ok()) {
    Logf(LogLevel::kError, "campaign", "cell task failed: %s",
         status.ToString().c_str());
  }
  stats.compute_seconds = phase.Seconds();

  // Phase 4 (serial): publish results in work-list order, so cells() and the
  // reports are independent of which cell finished first.
  for (auto& job : jobs) {
    stats.cpu_seconds += job.cpu_seconds;
    cells_.push_back(std::move(job.cell));
  }
  stats.total_seconds = total.Seconds();
  Logf(LogLevel::kInfo, "campaign",
       "%zu cell(s) in %.1fs wall, %.1fs cpu-sum (speedup %.2fx, %zu "
       "thread(s))",
       jobs.size(), stats.compute_seconds, stats.cpu_seconds,
       stats.compute_seconds > 0 ? stats.cpu_seconds / stats.compute_seconds
                                 : 1.0,
       MaxParallelism());
  WriteReport(stats);
  return Status::OK();
}

namespace {

/// Replays `algorithm`'s journalled lane outcomes (dataset-major grid order)
/// into `breaker`: quarantine rows are skips, not evidence. Because lane
/// prerequisites serialise each algorithm's cells across workers, every
/// worker replays the same prefix the single-process lane would have
/// accumulated — quarantine decisions are therefore bit-identical.
bool ReplayLaneIntoBreaker(const std::vector<fabric::GridCell>& grid,
                           const std::vector<fabric::CellStatus>& statuses,
                           const std::string& algorithm,
                           CircuitBreaker* breaker) {
  for (size_t i = 0; i < grid.size(); ++i) {
    if (grid[i].algorithm != algorithm || !statuses[i].terminal) continue;
    if (statuses[i].quarantined_row) continue;
    if (statuses[i].trained) {
      breaker->RecordSuccess(algorithm);
    } else {
      breaker->RecordFailure(algorithm, grid[i].dataset);
    }
  }
  return breaker->IsQuarantined(algorithm);
}

}  // namespace

Status Campaign::RunWorker(const std::string& owner,
                           const WorkerDrillHooks* drill) {
  trace::SetProcessLabel("etsc-worker:" + owner);
  TraceSpan run_span("campaign", "worker_run");

  // Phase 1 (identical to Run): generate datasets, derive the header.
  std::vector<BenchmarkDataset> benchmarks;
  ETSC_RETURN_NOT_OK(GenerateDatasets(&benchmarks));

  // The grid every worker must agree on: dataset-major with per-algorithm
  // lane prerequisites. Unknown algorithms are excluded up-front (one
  // warning), mirroring Run()'s skip — a cell that could never produce a
  // terminal row would wedge the fabric's completion check forever.
  std::vector<std::string> algorithms;
  for (const auto& algorithm : config_.algorithms) {
    auto probe =
        MakePaperAlgorithm(algorithm, benchmarks.front().canonical_profile.name,
                           benchmarks.front().data.MaxLength());
    if (!probe.ok()) {
      Logf(LogLevel::kWarn, "campaign", "%s",
           probe.status().ToString().c_str());
      continue;
    }
    algorithms.push_back(algorithm);
  }
  if (algorithms.empty()) {
    return Status::NotFound("worker: no known algorithm configured");
  }
  std::vector<fabric::GridCell> grid;
  std::map<std::string, const BenchmarkDataset*> benchmark_of;
  {
    std::map<std::string, size_t> last_in_lane;
    for (const auto& benchmark : benchmarks) {
      const std::string& dataset_name = benchmark.canonical_profile.name;
      benchmark_of[dataset_name] = &benchmark;
      for (const auto& algorithm : algorithms) {
        fabric::GridCell cell;
        cell.algorithm = algorithm;
        cell.dataset = dataset_name;
        const auto it = last_in_lane.find(algorithm);
        if (it != last_in_lane.end()) cell.prerequisite = it->second;
        last_in_lane[algorithm] = grid.size();
        grid.push_back(std::move(cell));
      }
    }
  }

  fabric::WorkerJournal journal(config_.cache_path, journal_header_, grid,
                                owner, fabric::LeaseOptions::FromEnv());
  ETSC_RETURN_NOT_OK(journal.EnsureHeader());
  const std::shared_ptr<const ModelCache> model_cache = ModelCache::FromEnv();
  size_t computed = 0;

  for (;;) {
    ETSC_ASSIGN_OR_RETURN(const fabric::WorkerJournal::Acquired acquired,
                          journal.Acquire());
    if (acquired.all_terminal) break;
    if (acquired.index == fabric::kNoCell) {
      // Everything acquirable is leased by live workers (or gated on their
      // lanes); sleep until the soonest expiry could free a cell.
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          std::max(10.0, acquired.retry_after_ms)));
      continue;
    }
    const fabric::GridCell& gcell = journal.grid()[acquired.index];
    if (drill != nullptr && drill->on_cell &&
        !drill->on_cell(gcell.algorithm, gcell.dataset)) {
      // Crash drill: walk away holding the lease, like a SIGKILLed worker.
      Logf(LogLevel::kWarn, "campaign",
           "%s: drill hook abandoned the run holding the lease on %s/%s",
           owner.c_str(), gcell.algorithm.c_str(), gcell.dataset.c_str());
      return Status::OK();
    }

    CampaignCell cell;
    cell.algorithm = gcell.algorithm;
    cell.dataset = gcell.dataset;

    // Quarantine decision: a broadcast row published by any worker, or the
    // deterministic breaker replay over this lane's journalled outcomes.
    CircuitBreaker breaker(config_.supervisor.quarantine_after);
    const bool replayed_quarantine = ReplayLaneIntoBreaker(
        journal.grid(), acquired.statuses, gcell.algorithm, &breaker);
    if (acquired.quarantined_algorithms.count(gcell.algorithm) > 0 ||
        replayed_quarantine) {
      cell.quarantined = true;
      cell.failure = Status::SkippedQuarantine(
                         gcell.algorithm +
                         " quarantined after repeated failures; "
                         "cell not attempted")
                         .ToString();
      ETSC_RETURN_NOT_OK(
          journal.Complete(acquired.index, FormatJournalRow(cell)));
      if (MetricsEnabled()) JournalAppends().Add(1);
      Logf(LogLevel::kWarn, "campaign", "  %s on %s: %s",
           gcell.algorithm.c_str(), gcell.dataset.c_str(),
           cell.failure.c_str());
      continue;
    }

    const BenchmarkDataset& benchmark = *benchmark_of.at(gcell.dataset);
    auto prototype = MakePaperAlgorithm(gcell.algorithm, gcell.dataset,
                                        benchmark.data.MaxLength());
    if (!prototype.ok()) {
      // Probed fine above, so only exotic failures land here; a failed row
      // still terminates the cell so the grid completes.
      cell.failure = prototype.status().ToString();
      ETSC_RETURN_NOT_OK(
          journal.Complete(acquired.index, FormatJournalRow(cell)));
      if (MetricsEnabled()) JournalAppends().Add(1);
      continue;
    }
    auto classifier = ApplyFaultSpec(config_.fault_spec, gcell.algorithm,
                                     std::move(*prototype));
    TraceSpan cell_span("campaign", [&] {
      return "cell:" + gcell.algorithm + "/" + gcell.dataset;
    });
    Logf(LogLevel::kInfo, "campaign", "%s: %s on %s (%zu instances)...",
         owner.c_str(), gcell.algorithm.c_str(), gcell.dataset.c_str(),
         benchmark.data.size());

    EvaluationOptions options;
    options.num_folds = config_.folds;
    options.seed = config_.seed;
    options.train_budget_seconds = config_.train_budget_seconds;
    options.predict_budget_seconds = config_.predict_budget_seconds;
    options.model_cache = model_cache;
    options.retry = config_.supervisor.retry;
    options.watchdog_grace = config_.supervisor.watchdog_grace;

    bool lease_lost = false;
    {
      // Heartbeats renew the lease while the cell computes — a slow cell is
      // not a dead worker. Scoped so the keeper is joined before Complete.
      fabric::LeaseKeeper keeper(&journal, acquired.index);
      const EvaluationResult result =
          CrossValidate(benchmark.data, *classifier, options);
      cell.trained = result.trained();
      for (const auto& fold : result.folds) {
        cell.retries += std::max(0, fold.fit_attempts - 1);
        if (cell.failure.empty() && !fold.failure.empty()) {
          cell.failure = fold.failure;
        }
      }
      const EvalScores scores = result.MeanScores();
      cell.accuracy = scores.accuracy;
      cell.f1 = scores.f1;
      cell.earliness = scores.earliness;
      cell.harmonic_mean = scores.harmonic_mean;
      cell.train_seconds = result.MeanTrainSeconds();
      cell.test_seconds_per_instance = result.MeanTestSecondsPerInstance();
      lease_lost = keeper.lease_lost();
    }
    if (lease_lost) {
      // Stolen mid-compute (our heartbeats lapsed past the TTL): the thief's
      // re-run is the row of record; journalling ours too would be a
      // duplicate at best and a fork at worst.
      Logf(LogLevel::kWarn, "campaign",
           "%s: lease on %s/%s was stolen mid-compute; result discarded",
           owner.c_str(), gcell.algorithm.c_str(), gcell.dataset.c_str());
      continue;
    }
    if (!cell.trained) {
      // Feed the fresh failure into the replayed streak; the worker that
      // trips the breaker broadcasts the quarantine so the others stop
      // without waiting to re-derive it from rows.
      if (breaker.RecordFailure(gcell.algorithm, gcell.dataset)) {
        ETSC_RETURN_NOT_OK(journal.PublishQuarantine(gcell.algorithm));
      }
    }
    if (MetricsEnabled()) {
      CellsComputed().Add(1);
      JournalAppends().Add(1);
    }
    ++computed;
    ETSC_RETURN_NOT_OK(
        journal.Complete(acquired.index, FormatJournalRow(cell)));
    Logf(LogLevel::kInfo, "campaign", "  %s on %s: %s",
         gcell.algorithm.c_str(), gcell.dataset.c_str(),
         cell.trained ? "ok" : ("DNF: " + cell.failure).c_str());
  }
  Logf(LogLevel::kInfo, "campaign",
       "%s: campaign complete — every cell terminal (%zu computed here)",
       owner.c_str(), computed);
  return Status::OK();
}

Result<MergeSummary> MergeShardJournals(const std::string& out_path,
                                        const std::vector<std::string>& inputs,
                                        const CampaignConfig& config,
                                        const std::string& expected_header) {
  MergeSummary summary;
  std::map<std::pair<std::string, std::string>, std::string> rows;
  std::vector<std::pair<std::string, std::string>> order;
  const size_t sentinel_len = sizeof(kRowSentinel) - 1;
  for (const auto& path : inputs) {
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot read shard journal " + path);
    std::string line;
    if (!std::getline(in, line) || line.rfind("# ", 0) != 0) {
      return Status::DataLoss(path + ": missing journal header line");
    }
    if (line != expected_header) {
      const int theirs = fabric::HeaderVersion(line);
      if (theirs > kJournalFormatVersion) {
        return Status::FailedPrecondition(
            path + " was written by a newer build (journal format v" +
            std::to_string(theirs) + ", this binary reads up to v" +
            std::to_string(kJournalFormatVersion) + "): upgrade the binary");
      }
      // Refuse rather than guess: shards from different configs or different
      // generated data must never be blended into one report. Name both
      // fingerprints so the operator can see exactly what disagrees.
      return Status::FailedPrecondition(
          path + " was written under a different campaign identity — "
          "refusing to interleave mismatched shards:\n  journal:  " + line +
          "\n  expected: " + expected_header);
    }
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == '@') {
        ++summary.control_rows;  // lease/quarantine rows end with the merge
        continue;
      }
      if (line.size() < sentinel_len ||
          line.compare(line.size() - sentinel_len, sentinel_len,
                       kRowSentinel) != 0) {
        continue;  // truncated by a mid-write crash; drop like LoadCache does
      }
      const size_t c1 = line.find(',');
      if (c1 == std::string::npos) continue;
      const size_t c2 = line.find(',', c1 + 1);
      if (c2 == std::string::npos) continue;
      auto key = std::make_pair(line.substr(0, c1),
                                line.substr(c1 + 1, c2 - c1 - 1));
      const auto [it, inserted] = rows.emplace(key, line);
      if (inserted) {
        order.push_back(key);
      } else {
        it->second = line;  // resumed shard: the freshest row wins
      }
    }
  }
  summary.rows = rows.size();

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot write merged journal " + out_path);
  }
  out << expected_header << "\n";
  std::map<std::pair<std::string, std::string>, bool> written;
  for (const auto& dataset : config.datasets) {
    for (const auto& algorithm : config.algorithms) {
      ++summary.grid_cells;
      const auto it = rows.find({algorithm, dataset});
      if (it == rows.end()) continue;
      ++summary.terminal_cells;
      out << it->second << "\n";
      written[it->first] = true;
    }
  }
  for (const auto& key : order) {
    if (!written.count(key)) out << rows[key] << "\n";
  }
  out.flush();
  if (!out) return Status::IOError("write to " + out_path + " failed");
  summary.complete =
      summary.grid_cells > 0 && summary.terminal_cells == summary.grid_cells;
  return summary;
}

std::string Campaign::ReportPath() const {
  return config_.report_path.empty() ? config_.cache_path + ".report.json"
                                     : config_.report_path;
}

void Campaign::WriteReport(const RunStats& stats) const {
  json::Writer w;
  w.BeginObject();
  w.Field("fingerprint", config_.Fingerprint());
  w.Key("config").BeginObject();
  w.Field("height_scale", config_.height_scale);
  w.Field("folds", config_.folds);
  w.Field("train_budget_seconds", config_.train_budget_seconds);
  // Infinity (the unlimited default) serialises as null per json::Writer.
  w.Field("predict_budget_seconds", config_.predict_budget_seconds);
  w.Field("maritime_windows", config_.maritime_windows);
  w.Field("seed", config_.seed);
  w.Field("cost_alpha", config_.cost_alpha);
  w.Key("algorithms").BeginArray();
  for (const auto& algorithm : config_.algorithms) w.String(algorithm);
  w.EndArray();
  w.Key("datasets").BeginArray();
  for (const auto& dataset : config_.datasets) w.String(dataset);
  w.EndArray();
  w.Field("cache_path", config_.cache_path);
  w.Field("report_only", config_.report_only);
  // The active kernel path (ETSC_SIMD x build ISA). Volatile for report
  // diffing: the SIMD equivalence gate compares an ETSC_SIMD=0 run against
  // an ETSC_SIMD=1 run, so --report-diff strips this block.
  w.Key("simd").BeginObject();
  w.Field("enabled", simd::Enabled());
  w.Field("isa_compiled", std::string(simd::CompiledIsa()));
  w.Field("isa_active", std::string(simd::ActiveIsa()));
  w.EndObject();
  w.Key("supervisor").BeginObject();
  w.Field("max_retries", config_.supervisor.retry.max_retries);
  w.Field("base_backoff_ms", config_.supervisor.retry.base_backoff_ms);
  w.Field("quarantine_after", config_.supervisor.quarantine_after);
  w.Field("watchdog_grace", config_.supervisor.watchdog_grace);
  w.EndObject();
  if (!config_.fault_spec.empty()) w.Field("fault_spec", config_.fault_spec);
  w.EndObject();
  w.Key("phases").BeginObject();
  w.Field("load_cache_seconds", stats.load_cache_seconds);
  w.Field("generate_seconds", stats.generate_seconds);
  w.Field("plan_seconds", stats.plan_seconds);
  w.Field("compute_seconds", stats.compute_seconds);
  w.Field("total_seconds", stats.total_seconds);
  w.EndObject();
  w.Field("threads", MaxParallelism());
  w.Field("cpu_seconds", stats.cpu_seconds);
  w.Field("cells_loaded", stats.cells_loaded);
  w.Field("cells_computed", stats.cells_computed);
  size_t failed = 0;
  size_t quarantined = 0;
  size_t retries = 0;
  for (const auto& cell : cells_) {
    if (!cell.trained) ++failed;
    if (cell.quarantined) ++quarantined;
    retries += static_cast<size_t>(std::max(0, cell.retries));
  }
  w.Field("cells_failed", failed);
  w.Field("cells_quarantined", quarantined);
  w.Field("fit_retries", retries);
  w.Key("cells").BeginArray();
  for (const auto& cell : cells_) {
    w.BeginObject();
    w.Field("algorithm", cell.algorithm);
    w.Field("dataset", cell.dataset);
    w.Field("trained", cell.trained);
    if (cell.retries > 0) w.Field("retries", cell.retries);
    if (cell.quarantined) w.Field("quarantined", cell.quarantined);
    if (!cell.failure.empty()) w.Field("failure", cell.failure);
    w.Field("accuracy", cell.accuracy);
    w.Field("f1", cell.f1);
    w.Field("earliness", cell.earliness);
    w.Field("harmonic_mean", cell.harmonic_mean);
    // Alpha-weighted cost (core/metrics.h CostScore): lower is better,
    // derived from the journalled accuracy/earliness under config cost_alpha.
    w.Field("cost", CostScore(cell.accuracy, cell.earliness, config_.cost_alpha));
    w.Field("train_seconds", cell.train_seconds);
    w.Field("test_seconds_per_instance", cell.test_seconds_per_instance);
    w.EndObject();
  }
  w.EndArray();
  // Snapshot of every process-wide metric at the end of the run: kernel and
  // early-abandon counters, pool queue/latency, deadline slack, degraded
  // predictions, journal appends.
  w.Key("metrics").RawValue(MetricRegistry::Global().ToJson());
  w.EndObject();

  const std::string path = ReportPath();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    Logf(LogLevel::kWarn, "campaign", "cannot write report %s", path.c_str());
    return;
  }
  out << w.str() << "\n";
  Logf(LogLevel::kInfo, "campaign", "report written to %s", path.c_str());
}

double Campaign::CategoryMean(const std::string& algorithm,
                              DatasetCategory category,
                              double (*extract)(const CampaignCell&)) const {
  double sum = 0.0;
  size_t count = 0;
  for (const auto& profile : profiles_) {
    if (!profile.IsIn(category)) continue;
    const CampaignCell* cell = Find(algorithm, profile.name);
    if (cell == nullptr || !cell->trained) continue;
    const double value = extract(*cell);
    // Empty-fold cells carry explicit NaN scores (core/metrics.cc); they
    // must not turn the whole category mean into NaN.
    if (std::isnan(value)) continue;
    sum += value;
    ++count;
  }
  return count == 0 ? std::nan("") : sum / static_cast<double>(count);
}

double CellAccuracy(const CampaignCell& cell) { return cell.accuracy; }
double CellF1(const CampaignCell& cell) { return cell.f1; }
double CellEarliness(const CampaignCell& cell) { return cell.earliness; }
double CellHarmonicMean(const CampaignCell& cell) { return cell.harmonic_mean; }
double CellTrainMinutes(const CampaignCell& cell) {
  return cell.train_seconds / 60.0;
}

void PrintCategoryTable(const Campaign& campaign, const std::string& title,
                        double (*extract)(const CampaignCell&), int digits) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("(config: %s)\n", campaign.config().Fingerprint().c_str());
  std::printf("%-10s", "algorithm");
  for (DatasetCategory category : AllDatasetCategories()) {
    std::printf(" %12s", DatasetCategoryName(category).c_str());
  }
  std::printf("\n");
  for (const auto& algorithm : campaign.config().algorithms) {
    std::printf("%-10s", algorithm.c_str());
    for (DatasetCategory category : AllDatasetCategories()) {
      const double value = campaign.CategoryMean(algorithm, category, extract);
      if (std::isnan(value)) {
        std::printf(" %12s", "--");
      } else {
        std::printf(" %12.*f", digits, value);
      }
    }
    std::printf("\n");
  }
}

}  // namespace etsc::bench
