// Ablation benches for the design choices the paper discusses:
//   (a) TEASER with vs without its one-class SVM tier (Sec. 6.2.3 credits the
//       OC-SVM for TEASER outperforming plain S-WEASEL);
//   (b) TEASER with vs without z-normalisation (the paper removes it for the
//       online setting and reports ~5% difference);
//   (c) ECEC's accuracy/earliness trade-off knob α;
//   (d) STRUT grid search vs the faster binary-search refinement;
//   (e) WEASEL with vs without bigrams;
//   (f) the four voting schemes for univariate algorithms on multivariate
//       data (future-work analysis of Sec. 7).

#include <cstdio>
#include <memory>

#include "algos/ecec.h"
#include "algos/ects.h"
#include "algos/strut.h"
#include "algos/teaser.h"
#include "core/evaluation.h"
#include "core/voting_schemes.h"
#include "data/repository.h"
#include "tsc/weasel.h"

namespace {

etsc::Dataset LoadDataset(const std::string& name) {
  etsc::RepositoryOptions repo;
  repo.height_scale = 0.35;
  repo.maritime_windows = 600;
  auto benchmark = etsc::MakeBenchmarkDataset(name, repo);
  ETSC_CHECK(benchmark.ok());
  return std::move(benchmark->data);
}

void Report(const char* label, const etsc::EvaluationResult& result) {
  if (!result.trained()) {
    std::printf("  %-28s DNF\n", label);
    return;
  }
  const etsc::EvalScores scores = result.MeanScores();
  std::printf("  %-28s acc=%.3f f1=%.3f earliness=%.3f hm=%.3f\n", label,
              scores.accuracy, scores.f1, scores.earliness,
              scores.harmonic_mean);
}

etsc::EvaluationOptions Opts() {
  etsc::EvaluationOptions options;
  options.num_folds = 2;
  options.train_budget_seconds = 60.0;
  return options;
}

}  // namespace

int main() {
  const etsc::Dataset power = LoadDataset("PowerCons");
  const etsc::Dataset motions = LoadDataset("BasicMotions");

  std::printf("== Ablation (a): TEASER one-class SVM tier (PowerCons) ==\n");
  {
    etsc::TeaserOptions with_svm;
    with_svm.num_prefixes = 10;
    Report("TEASER (two-tier)",
           CrossValidate(power, etsc::TeaserClassifier(with_svm), Opts()));
    // Disabling the filter: a huge nu cap makes every OC-SVM fit degenerate to
    // pass-through; emulate by forcing the filter off via max_training_points
    // = 0 is invalid, so use an accept-all variant through options.
    etsc::TeaserOptions no_svm = with_svm;
    no_svm.ocsvm.nu = 1.0 - 1e-9;  // everything becomes an outlier bound
    no_svm.ocsvm.max_iters = 0;    // uniform alphas: accepts ~everything
    Report("TEASER (SVM tier neutered)",
           CrossValidate(power, etsc::TeaserClassifier(no_svm), Opts()));
  }

  std::printf("\n== Ablation (b): TEASER z-normalisation (PowerCons) ==\n");
  {
    etsc::TeaserOptions plain;
    plain.num_prefixes = 10;
    Report("TEASER (no z-norm, paper)",
           CrossValidate(power, etsc::TeaserClassifier(plain), Opts()));
    etsc::TeaserOptions znorm = plain;
    znorm.z_normalize = true;
    Report("TEASER (original z-norm)",
           CrossValidate(power, etsc::TeaserClassifier(znorm), Opts()));
  }

  std::printf("\n== Ablation (c): ECEC alpha trade-off (PowerCons) ==\n");
  for (double alpha : {0.5, 0.8, 0.95}) {
    etsc::EcecOptions options;
    options.num_prefixes = 10;
    options.alpha = alpha;
    char label[32];
    std::snprintf(label, sizeof(label), "ECEC alpha=%.2f", alpha);
    Report(label, CrossValidate(power, etsc::EcecClassifier(options), Opts()));
  }

  std::printf("\n== Ablation (d): STRUT search mode (PowerCons) ==\n");
  {
    etsc::StrutOptions grid;
    grid.search = etsc::StrutSearch::kGrid;
    Report("S-MINI (grid)",
           CrossValidate(power, *etsc::MakeStrutMiniRocket(grid), Opts()));
    etsc::StrutOptions binary;
    binary.search = etsc::StrutSearch::kBinary;
    Report("S-MINI (binary refine)",
           CrossValidate(power, *etsc::MakeStrutMiniRocket(binary), Opts()));
  }

  std::printf("\n== Ablation (e): WEASEL bigrams inside S-WEASEL (PowerCons) ==\n");
  {
    Report("S-WEASEL (uni+bigrams)",
           CrossValidate(power, *etsc::MakeStrutWeasel(false), Opts()));
    // A STRUT over WEASEL without bigrams.
    etsc::WeaselOptions no_bigrams;
    no_bigrams.use_bigrams = false;
    auto strut = std::make_unique<etsc::StrutClassifier>(
        std::make_unique<etsc::WeaselClassifier>(no_bigrams),
        etsc::StrutOptions{}, "S-WEASEL-uni");
    Report("S-WEASEL (unigrams only)", CrossValidate(power, *strut, Opts()));
  }

  std::printf("\n== Ablation (f): voting schemes, ECTS on BasicMotions ==\n");
  for (etsc::VotingScheme scheme :
       {etsc::VotingScheme::kMajorityWorstEarliness,
        etsc::VotingScheme::kMajorityMeanEarliness,
        etsc::VotingScheme::kEarliestVoter,
        etsc::VotingScheme::kEarlinessWeighted}) {
    etsc::ConfigurableVotingClassifier wrapper(
        std::make_unique<etsc::EctsClassifier>(), scheme);
    etsc::EvaluationOptions options = Opts();
    options.wrap_univariate_with_voting = false;  // we wrapped explicitly
    Report(etsc::VotingSchemeName(scheme).c_str(),
           CrossValidate(motions, wrapper, options));
  }
  return 0;
}
