// Reproduces paper Table 2: characteristics of the evaluated algorithms.
// The C++ re-implementation makes every row's "language" column C++; the
// original languages are printed alongside for reference.

#include <cstdio>

namespace {

struct Row {
  const char* name;
  const char* category;      // model/prefix/shapelet-based or full-TSC
  bool multivariate;         // native multivariate support
  bool early;                // early (vs full) classifier
  const char* original_lang;
};

constexpr Row kRows[] = {
    {"ECEC", "model-based", false, true, "Java"},
    {"ECONOMY-K", "model-based", false, true, "Python"},
    {"ECTS", "prefix-based", false, true, "Python"},
    {"EDSC", "shapelet-based", false, true, "C++"},
    {"MiniROCKET", "convolutional (full TSC)", true, false, "Python"},
    {"MLSTM", "neural (full TSC)", true, false, "Python"},
    {"WEASEL", "shapelet/dictionary (full TSC)", true, false, "Python"},
    {"TEASER", "prefix-based", false, true, "Java"},
};

}  // namespace

int main() {
  std::printf("== Table 2: characteristics of evaluated algorithms ==\n");
  std::printf("%-11s %-28s %-12s %-9s %-13s %s\n", "algorithm", "category",
              "multivariate", "early", "original", "this repo");
  for (const Row& row : kRows) {
    std::printf("%-11s %-28s %-12s %-9s %-13s %s\n", row.name, row.category,
                row.multivariate ? "yes" : "no (voting)",
                row.early ? "early" : "full-TSC", row.original_lang, "C++");
  }
  std::printf(
      "\nUnivariate early classifiers run on multivariate datasets through the\n"
      "per-variable voting wrapper (paper Sec. 6.1); the full-TSC algorithms\n"
      "become early classifiers through STRUT (S-WEASEL, S-MINI, S-MLSTM).\n");
  return 0;
}
