#include "core/time_series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace etsc {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(TimeSeries, UnivariateConstruction) {
  TimeSeries ts = TimeSeries::Univariate({1.0, 2.0, 3.0});
  EXPECT_EQ(ts.num_variables(), 1u);
  EXPECT_EQ(ts.length(), 3u);
  EXPECT_DOUBLE_EQ(ts.at(0, 1), 2.0);
}

TEST(TimeSeries, FromChannelsRejectsRagged) {
  auto result = TimeSeries::FromChannels({{1.0, 2.0}, {1.0}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TimeSeries, FromChannelsRejectsEmpty) {
  auto result = TimeSeries::FromChannels({});
  EXPECT_FALSE(result.ok());
}

TEST(TimeSeries, PrefixTruncates) {
  TimeSeries ts = TimeSeries::Univariate({1, 2, 3, 4, 5});
  TimeSeries prefix = ts.Prefix(3);
  EXPECT_EQ(prefix.length(), 3u);
  EXPECT_DOUBLE_EQ(prefix.at(0, 2), 3.0);
}

TEST(TimeSeries, PrefixClampsToLength) {
  TimeSeries ts = TimeSeries::Univariate({1, 2});
  EXPECT_EQ(ts.Prefix(10).length(), 2u);
}

TEST(TimeSeries, SingleVariableExtractsChannel) {
  auto ts = TimeSeries::FromChannels({{1, 2}, {3, 4}}).value();
  TimeSeries second = ts.SingleVariable(1);
  EXPECT_EQ(second.num_variables(), 1u);
  EXPECT_DOUBLE_EQ(second.at(0, 0), 3.0);
}

TEST(TimeSeries, MissingValueDetection) {
  TimeSeries clean = TimeSeries::Univariate({1, 2});
  EXPECT_FALSE(clean.HasMissingValues());
  TimeSeries dirty = TimeSeries::Univariate({1, kNaN});
  EXPECT_TRUE(dirty.HasMissingValues());
}

TEST(TimeSeries, FillMissingUsesGapEndpointMean) {
  // The paper's rule: mean of the last value before the gap and the first
  // after it.
  TimeSeries ts = TimeSeries::Univariate({2.0, kNaN, kNaN, 6.0});
  ts.FillMissingValues();
  EXPECT_FALSE(ts.HasMissingValues());
  EXPECT_DOUBLE_EQ(ts.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(ts.at(0, 2), 4.0);
}

TEST(TimeSeries, FillMissingLeadingAndTrailing) {
  TimeSeries ts = TimeSeries::Univariate({kNaN, 3.0, kNaN});
  ts.FillMissingValues();
  EXPECT_DOUBLE_EQ(ts.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(ts.at(0, 2), 3.0);
}

TEST(TimeSeries, FillMissingAllNaNBecomesZero) {
  TimeSeries ts = TimeSeries::Univariate({kNaN, kNaN});
  ts.FillMissingValues();
  EXPECT_DOUBLE_EQ(ts.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ts.at(0, 1), 0.0);
}

TEST(TimeSeries, ZNormalize) {
  TimeSeries ts = TimeSeries::Univariate({1.0, 2.0, 3.0, 4.0});
  ts.ZNormalize();
  EXPECT_NEAR(ts.Mean(0), 0.0, 1e-12);
  EXPECT_NEAR(ts.StdDev(0), 1.0, 1e-12);
}

TEST(TimeSeries, ZNormalizeConstantChannelOnlyCentres) {
  TimeSeries ts = TimeSeries::Univariate({5.0, 5.0, 5.0});
  ts.ZNormalize();
  for (size_t t = 0; t < 3; ++t) EXPECT_DOUBLE_EQ(ts.at(0, t), 0.0);
}

TEST(TimeSeries, MeanAndStdDev) {
  TimeSeries ts = TimeSeries::Univariate({2.0, 4.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(ts.Mean(0), 5.0);
  EXPECT_NEAR(ts.StdDev(0), std::sqrt(5.0), 1e-12);
}

TEST(Distance, SquaredEuclidean) {
  EXPECT_DOUBLE_EQ(SquaredEuclidean({0, 0}, {3, 4}), 25.0);
}

TEST(Distance, EuclideanDistanceMultivariate) {
  auto a = TimeSeries::FromChannels({{0, 0}, {0, 0}}).value();
  auto b = TimeSeries::FromChannels({{3, 0}, {0, 4}}).value();
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
}

TEST(Distance, EuclideanDistancePrefix) {
  auto a = TimeSeries::Univariate({0, 0, 100});
  auto b = TimeSeries::Univariate({3, 4, 0});
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b, 2), 5.0);
}

}  // namespace
}  // namespace etsc
