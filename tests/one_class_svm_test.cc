#include "ml/one_class_svm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace etsc {
namespace {

std::vector<std::vector<double>> GaussianBlob(size_t n, double cx, double cy,
                                              double spread, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  for (size_t i = 0; i < n; ++i) {
    points.push_back({cx + rng.Gaussian(0, spread), cy + rng.Gaussian(0, spread)});
  }
  return points;
}

TEST(OneClassSvm, AcceptsInliersRejectsFarOutliers) {
  Rng rng(51);
  const auto blob = GaussianBlob(200, 0.0, 0.0, 0.5, 52);
  OneClassSvm svm;
  ASSERT_TRUE(svm.Fit(blob, &rng).ok());

  size_t accepted = 0;
  for (const auto& p : GaussianBlob(100, 0.0, 0.0, 0.4, 53)) {
    auto verdict = svm.Accepts(p);
    ASSERT_TRUE(verdict.ok());
    if (*verdict) ++accepted;
  }
  EXPECT_GE(accepted, 85u);  // most inliers accepted

  size_t rejected = 0;
  for (const auto& p : GaussianBlob(100, 20.0, 20.0, 0.4, 54)) {
    auto verdict = svm.Accepts(p);
    ASSERT_TRUE(verdict.ok());
    if (!*verdict) ++rejected;
  }
  EXPECT_GE(rejected, 95u);  // far outliers rejected
}

TEST(OneClassSvm, NuControlsTraining) {
  // Just exercise the knob: both settings must fit and produce SVs.
  Rng rng(55);
  const auto blob = GaussianBlob(100, 0.0, 0.0, 1.0, 56);
  for (double nu : {0.01, 0.3}) {
    OneClassSvmOptions options;
    options.nu = nu;
    OneClassSvm svm(options);
    ASSERT_TRUE(svm.Fit(blob, &rng).ok());
    EXPECT_GT(svm.num_support_vectors(), 0u);
  }
}

TEST(OneClassSvm, SubsamplingCapApplies) {
  Rng rng(57);
  OneClassSvmOptions options;
  options.max_training_points = 50;
  OneClassSvm svm(options);
  ASSERT_TRUE(svm.Fit(GaussianBlob(500, 0, 0, 1.0, 58), &rng).ok());
  EXPECT_LE(svm.num_support_vectors(), 50u);
}

TEST(OneClassSvm, DecisionContinuity) {
  // Decision value decreases as the query moves away from the blob.
  Rng rng(59);
  OneClassSvm svm;
  ASSERT_TRUE(svm.Fit(GaussianBlob(150, 0, 0, 0.5, 60), &rng).ok());
  auto near = svm.Decision({0.0, 0.0});
  auto mid = svm.Decision({2.0, 2.0});
  auto far = svm.Decision({10.0, 10.0});
  ASSERT_TRUE(near.ok() && mid.ok() && far.ok());
  EXPECT_GT(*near, *mid);
  EXPECT_GT(*mid, *far);
}

TEST(OneClassSvm, ExplicitGammaRespected) {
  Rng rng(61);
  OneClassSvmOptions options;
  options.gamma = 10.0;  // very narrow kernel
  OneClassSvm svm(options);
  ASSERT_TRUE(svm.Fit(GaussianBlob(50, 0, 0, 1.0, 62), &rng).ok());
  // With a narrow kernel, a point between training points scores low.
  auto far = svm.Decision({100.0, 100.0});
  ASSERT_TRUE(far.ok());
  EXPECT_LT(*far, 0.0);
}

TEST(OneClassSvm, InputValidation) {
  Rng rng(63);
  OneClassSvm svm;
  EXPECT_FALSE(svm.Fit({}, &rng).ok());
  EXPECT_FALSE(svm.Fit({{1.0}, {1.0, 2.0}}, &rng).ok());
  EXPECT_FALSE(svm.Fit({{1.0}}, nullptr).ok());
  EXPECT_FALSE(svm.Decision({1.0}).ok());  // not fitted
}

TEST(OneClassSvm, SinglePointDegenerate) {
  Rng rng(64);
  OneClassSvm svm;
  ASSERT_TRUE(svm.Fit({{1.0, 2.0}}, &rng).ok());
  auto self = svm.Accepts({1.0, 2.0});
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(*self);
}

}  // namespace
}  // namespace etsc
