#include <gtest/gtest.h>

#include "algos/ects.h"
#include "algos/edsc.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

using testing::EarlyAccuracy;
using testing::MakeToyDataset;
using testing::MakeToyMultivariate;

TEST(Ects, MplsWithinRange) {
  Dataset d = MakeToyDataset(15, 20);
  EctsClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  ASSERT_EQ(model.mpls().size(), d.size());
  for (size_t mpl : model.mpls()) {
    EXPECT_GE(mpl, 1u);
    EXPECT_LE(mpl, 20u);
  }
}

TEST(Ects, EarlySignalGivesEarlyPredictions) {
  // Signal present from t = 0: MPLs should be well below the full length,
  // so mean earliness stays below 1.
  Dataset d = MakeToyDataset(20, 40, /*signal_start=*/0.0, 3, 0.05);
  EctsClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  double earliness = 0.0;
  for (size_t i = 0; i < d.size(); ++i) {
    auto pred = model.PredictEarly(d.instance(i));
    ASSERT_TRUE(pred.ok());
    earliness += static_cast<double>(pred->prefix_length) / 40.0;
  }
  earliness /= static_cast<double>(d.size());
  EXPECT_LT(earliness, 0.9);
}

TEST(Ects, LateSignalDelaysPredictions) {
  // Classes identical until 60% of the horizon: accurate prediction requires
  // prefixes reaching into the signal.
  Dataset d = MakeToyDataset(20, 40, /*signal_start=*/0.6, 3, 0.05);
  EctsClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(EarlyAccuracy(model, d), 0.9);
}

TEST(Ects, RejectsMultivariateAndTinyInput) {
  EctsClassifier model;
  EXPECT_FALSE(model.Fit(MakeToyMultivariate(5, 10)).ok());
  Dataset one("x", {TimeSeries::Univariate({1, 2})}, {0});
  EXPECT_FALSE(model.Fit(one).ok());
}

TEST(Ects, PredictBeforeFitFails) {
  EctsClassifier model;
  EXPECT_FALSE(model.PredictEarly(TimeSeries::Univariate({1.0})).ok());
}

TEST(Ects, BudgetExhaustionReported) {
  Dataset d = MakeToyDataset(40, 60);
  EctsClassifier model;
  model.set_train_budget_seconds(0.0);
  const Status status = model.Fit(d);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(Ects, SupportParameterRaisesMpl) {
  Dataset d = MakeToyDataset(15, 20);
  EctsOptions strict;
  strict.support = 1000;  // impossible support -> RNN rule never fires
  EctsClassifier lax, hard(strict);
  ASSERT_TRUE(lax.Fit(d).ok());
  ASSERT_TRUE(hard.Fit(d).ok());
  // With impossible support, per-series MPLs can only come from clustering,
  // never lower than the lax variant on average.
  double lax_sum = 0, hard_sum = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    lax_sum += static_cast<double>(lax.mpls()[i]);
    hard_sum += static_cast<double>(hard.mpls()[i]);
  }
  EXPECT_GE(hard_sum, lax_sum);
}

TEST(Edsc, ShapeletTriplesWellFormed) {
  Dataset d = MakeToyDataset(15, 24);
  EdscClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  ASSERT_FALSE(model.shapelets().empty());
  for (const auto& s : model.shapelets()) {
    EXPECT_GE(s.pattern.size(), 5u);   // minLen
    EXPECT_LE(s.pattern.size(), 12u);  // maxLen = L/2
    EXPECT_GT(s.threshold, 0.0);
    EXPECT_GT(s.utility, 0.0);
    EXPECT_GT(s.precision, 0.0);
    EXPECT_LE(s.precision, 1.0);
  }
}

TEST(Edsc, ShapeletsSortedByUtility) {
  Dataset d = MakeToyDataset(15, 24);
  EdscClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  const auto& shapelets = model.shapelets();
  for (size_t i = 1; i < shapelets.size(); ++i) {
    EXPECT_LE(shapelets[i].utility, shapelets[i - 1].utility);
  }
}

TEST(Edsc, EarlyPredictionsBeforeFullLength) {
  Dataset d = MakeToyDataset(20, 40, 0.0, 3, 0.05);
  EdscOptions options;
  options.start_stride = 2;
  EdscClassifier model(options);
  ASSERT_TRUE(model.Fit(d).ok());
  size_t early = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    auto pred = model.PredictEarly(d.instance(i));
    ASSERT_TRUE(pred.ok());
    if (pred->prefix_length < 40) ++early;
  }
  EXPECT_GT(early, d.size() / 2);
}

TEST(Edsc, MaxLengthFractionRespected) {
  Dataset d = MakeToyDataset(10, 30);
  EdscOptions options;
  options.max_length_fraction = 0.2;  // maxLen = 6
  EdscClassifier model(options);
  ASSERT_TRUE(model.Fit(d).ok());
  for (const auto& s : model.shapelets()) {
    EXPECT_LE(s.pattern.size(), 6u);
  }
}

TEST(Edsc, BudgetExhaustionReported) {
  Dataset d = MakeToyDataset(30, 60);
  EdscClassifier model;
  model.set_train_budget_seconds(0.0);
  const Status status = model.Fit(d);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(Edsc, RejectsMultivariate) {
  EdscClassifier model;
  EXPECT_FALSE(model.Fit(MakeToyMultivariate(5, 20)).ok());
}

TEST(Edsc, PredictBeforeFitFails) {
  EdscClassifier model;
  EXPECT_FALSE(model.PredictEarly(TimeSeries::Univariate({1.0})).ok());
}

TEST(Edsc, StrideControlsCandidateCount) {
  Dataset d = MakeToyDataset(10, 30);
  EdscOptions dense_opts;
  dense_opts.max_shapelets = 100000;
  EdscOptions sparse_opts = dense_opts;
  sparse_opts.start_stride = 5;
  sparse_opts.length_stride = 5;
  EdscClassifier dense(dense_opts), sparse(sparse_opts);
  ASSERT_TRUE(dense.Fit(d).ok());
  ASSERT_TRUE(sparse.Fit(d).ok());
  // The greedy cover keeps few shapelets either way, but the sparse variant
  // cannot keep more than the dense one found.
  EXPECT_LE(sparse.shapelets().size(), dense.shapelets().size() + 5);
}

}  // namespace
}  // namespace etsc
