#include "core/serving.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "algos/ects.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

/// Commits with label 1 once it has seen `need` points (same contract as the
/// streaming tests' FixedNeed).
class FixedNeed : public EarlyClassifier {
 public:
  explicit FixedNeed(size_t need) : need_(need) {}
  Status Fit(const Dataset&) override { return Status::OK(); }
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override {
    if (series.length() == 0) {
      return Status::InvalidArgument("empty series");
    }
    return EarlyPrediction{1, std::min(need_, series.length())};
  }
  std::string name() const override { return "fixed"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<FixedNeed>(need_);
  }

 private:
  size_t need_;
};

std::shared_ptr<const EarlyClassifier> FittedEcts(const Dataset& d) {
  auto model = std::make_shared<EctsClassifier>();
  EXPECT_TRUE(model->Fit(d).ok());
  return model;
}

TEST(ServingEngine, RegisterModelValidates) {
  ServingEngine engine;
  EXPECT_FALSE(engine.RegisterModel("m", nullptr, 1).ok());
  EXPECT_FALSE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(3), 0).ok());
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(3), 1).ok());
  auto dup = engine.RegisterModel("m", std::make_shared<FixedNeed>(5), 1);
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
}

TEST(ServingEngine, OpenRequiresARegisteredModel) {
  ServingEngine engine;
  auto id = engine.Open("nope");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kNotFound);
}

TEST(ServingEngine, AdmissionControlRejectsBeyondCapacity) {
  ServingOptions options;
  options.max_sessions = 2;
  ServingEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(3), 1).ok());
  auto first = engine.Open("m");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(engine.Open("m").ok());
  auto third = engine.Open("m");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.stats().rejected, 1u);
  // A spike degrades, it does not wedge: capacity freed by Close is reusable.
  ASSERT_TRUE(engine.Close(*first).ok());
  EXPECT_TRUE(engine.Open("m").ok());
  EXPECT_EQ(engine.stats().peak_sessions, 2u);
}

TEST(ServingEngine, IngestValidatesSessionAndArity) {
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(3), 2).ok());
  auto id = engine.Open("m");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine.Ingest(*id + 99, {1.0, 2.0}).code(),
            StatusCode::kNotFound);
  // Arity is checked at the door, before the observation can reach a buffer.
  EXPECT_EQ(engine.Ingest(*id, {1.0}).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine.Ingest(*id, {1.0, 2.0}).ok());
  auto info = engine.Info(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->pending, 1u);
  EXPECT_EQ(info->observed, 0u);  // Ingest queues; only DispatchBatch runs
}

TEST(ServingEngine, DispatchBatchDecidesQueuedSessions) {
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(3), 1).ok());
  auto id = engine.Open("m");
  ASSERT_TRUE(id.ok());
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(engine.Ingest(*id, {static_cast<double>(t)}).ok());
  }
  auto decided = engine.DispatchBatch();
  ASSERT_TRUE(decided.ok());
  EXPECT_EQ(*decided, 1u);
  auto info = engine.Info(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->observed, 4u);
  EXPECT_EQ(info->pending, 0u);
  ASSERT_TRUE(info->decision.has_value());
  EXPECT_EQ(info->decision->prefix_length, 3u);
  EXPECT_FALSE(info->deadline_forced);
  // A second dispatch with nothing queued decides nothing new.
  auto again = engine.DispatchBatch();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  EXPECT_EQ(engine.stats().decisions, 1u);
}

TEST(ServingEngine, FinishFlushesTheQueueAndForcesADecision) {
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(100), 1).ok());
  auto id = engine.Open("m");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Ingest(*id, {0.0}).ok());
  ASSERT_TRUE(engine.Ingest(*id, {1.0}).ok());
  auto finished = engine.Finish(*id);
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(finished->prefix_length, 2u);
  // Sticky: finishing again re-answers without changing anything.
  auto again = engine.Finish(*id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->prefix_length, 2u);
  EXPECT_EQ(engine.stats().decisions, 1u);
}

TEST(ServingEngine, ExpiredDeadlineForcesADecisionAtDispatch) {
  ServingOptions options;
  options.session_budget_seconds = 0.0;  // born expired
  ServingEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(100), 1).ok());
  auto id = engine.Open("m");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Ingest(*id, {0.5}).ok());
  auto decided = engine.DispatchBatch();
  ASSERT_TRUE(decided.ok());
  EXPECT_EQ(*decided, 1u);
  auto info = engine.Info(*id);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(info->decision.has_value());
  EXPECT_EQ(info->decision->prefix_length, 1u);
  EXPECT_TRUE(info->deadline_forced);
  EXPECT_EQ(engine.stats().deadline_forced, 1u);
}

TEST(ServingEngine, DeadlineNeverForcesAnEmptySession) {
  ServingOptions options;
  options.session_budget_seconds = 0.0;
  ServingEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(100), 1).ok());
  auto id = engine.Open("m");
  ASSERT_TRUE(id.ok());
  // Nothing observed: there is no prefix to answer on, so the expired
  // deadline must not inject a bogus Finish.
  auto decided = engine.DispatchBatch();
  ASSERT_TRUE(decided.ok());
  EXPECT_EQ(*decided, 0u);
  auto info = engine.Info(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->decision.has_value());
}

TEST(ServingEngine, EvictDecidedReclaimsOnlyDecidedSessions) {
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1).ok());
  auto decided_id = engine.Open("m");
  auto undecided_id = engine.Open("m");
  ASSERT_TRUE(decided_id.ok());
  ASSERT_TRUE(undecided_id.ok());
  for (int t = 0; t < 3; ++t) {
    ASSERT_TRUE(engine.Ingest(*decided_id, {static_cast<double>(t)}).ok());
  }
  ASSERT_TRUE(engine.Ingest(*undecided_id, {0.0}).ok());
  ASSERT_TRUE(engine.DispatchBatch().ok());
  EXPECT_EQ(engine.EvictDecided(), 1u);
  EXPECT_EQ(engine.Info(*decided_id).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(engine.Info(*undecided_id).ok());
  EXPECT_EQ(engine.stats().live_sessions, 1u);
  EXPECT_EQ(engine.stats().evicted, 1u);
}

TEST(ServingEngine, EvictIdleReclaimsOnlyIdleUndecidedSessions) {
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(100), 1).ok());
  auto idle_id = engine.Open("m");
  ASSERT_TRUE(idle_id.ok());
  ASSERT_TRUE(engine.Ingest(*idle_id, {0.0}).ok());
  ASSERT_TRUE(engine.DispatchBatch().ok());  // drain: pending must be empty
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto fresh_id = engine.Open("m");
  ASSERT_TRUE(fresh_id.ok());
  EXPECT_EQ(engine.EvictIdle(0.01), 1u);
  EXPECT_EQ(engine.Info(*idle_id).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(engine.Info(*fresh_id).ok());
}

TEST(ServingEngine, ReplayTraceIsDeterministic) {
  Dataset d = testing::MakeToyDataset(5, 12, 0.0, 3, 0.05);
  const auto a = BuildReplayTrace(d, 7, 42);
  const auto b = BuildReplayTrace(d, 7, 42);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 7u * 12u);  // every slot streams its full instance
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].session, b[i].session);
    EXPECT_EQ(a[i].values, b[i].values);
  }
  // A different seed interleaves differently (same multiset of events).
  const auto c = BuildReplayTrace(d, 7, 43);
  ASSERT_EQ(c.size(), a.size());
  bool any_difference = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_difference = any_difference || a[i].session != c[i].session;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ServingEngine, BatchedDecisionsAreBitIdenticalToSequential) {
  // The core serving contract: for any batching cadence (and any pool
  // width), the engine's decisions are bit-identical to replaying each
  // session through its own single-caller StreamingSession.
  Dataset d = testing::MakeToyDataset(10, 20, 0.0, 3, 0.05);
  auto model = FittedEcts(d);
  const size_t kSessions = 16;
  const auto trace = BuildReplayTrace(d, kSessions, 7);

  const auto expected = ReplaySequential(*model, 1, kSessions, trace);
  ASSERT_EQ(expected.size(), kSessions);
  for (const auto& outcome : expected) EXPECT_FALSE(outcome.failed);

  for (const size_t dispatch_every : {size_t{1}, size_t{7}, size_t{0}}) {
    ServingEngine engine;
    ASSERT_TRUE(engine.RegisterModel("ects", model, 1).ok());
    auto actual =
        ReplayThroughEngine(engine, "ects", kSessions, trace, dispatch_every);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(actual->size(), expected.size());
    for (size_t s = 0; s < kSessions; ++s) {
      EXPECT_EQ((*actual)[s], expected[s])
          << "session " << s << " diverged at dispatch_every="
          << dispatch_every;
    }
  }
}

TEST(ServingEngine, SessionsAcrossModelsDispatchInOneBatch) {
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("fast", std::make_shared<FixedNeed>(1), 1).ok());
  ASSERT_TRUE(
      engine.RegisterModel("slow", std::make_shared<FixedNeed>(3), 1).ok());
  std::vector<SessionId> fast_ids, slow_ids;
  for (int i = 0; i < 3; ++i) {
    auto f = engine.Open("fast");
    auto s = engine.Open("slow");
    ASSERT_TRUE(f.ok() && s.ok());
    fast_ids.push_back(*f);
    slow_ids.push_back(*s);
  }
  for (int t = 0; t < 4; ++t) {
    for (SessionId id : fast_ids) {
      ASSERT_TRUE(engine.Ingest(id, {static_cast<double>(t)}).ok());
    }
    for (SessionId id : slow_ids) {
      ASSERT_TRUE(engine.Ingest(id, {static_cast<double>(t)}).ok());
    }
  }
  auto decided = engine.DispatchBatch();
  ASSERT_TRUE(decided.ok());
  EXPECT_EQ(*decided, 6u);
  for (SessionId id : fast_ids) {
    auto info = engine.Info(id);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->model, "fast");
    ASSERT_TRUE(info->decision.has_value());
    EXPECT_EQ(info->decision->prefix_length, 1u);
  }
  for (SessionId id : slow_ids) {
    auto info = engine.Info(id);
    ASSERT_TRUE(info.ok());
    ASSERT_TRUE(info->decision.has_value());
    EXPECT_EQ(info->decision->prefix_length, 3u);
  }
}

TEST(ServingEngine, ConcurrentIngestAndDispatchStaysConsistent) {
  // The TSan build of this test is the thread-safety proof: ingest threads
  // race DispatchBatch (which fans out over the pool) and eviction.
  Dataset d = testing::MakeToyDataset(8, 16, 0.0, 3, 0.05);
  auto model = FittedEcts(d);
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterModel("ects", model, 1).ok());

  constexpr size_t kWriters = 4;
  constexpr size_t kSessionsPerWriter = 8;
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t s = 0; s < kSessionsPerWriter; ++s) {
        auto id = engine.Open("ects");
        ASSERT_TRUE(id.ok());
        const TimeSeries& instance = d.instance((w + s) % d.size());
        for (size_t t = 0; t < instance.length(); ++t) {
          const Status status = engine.Ingest(*id, {instance.at(0, t)});
          if (status.code() == StatusCode::kNotFound) break;  // evicted: fine
          ASSERT_TRUE(status.ok());
        }
      }
    });
  }
  std::thread dispatcher([&] {
    for (int round = 0; round < 50; ++round) {
      ASSERT_TRUE(engine.DispatchBatch().ok());
      engine.EvictDecided();
      std::this_thread::yield();
    }
  });
  for (auto& t : writers) t.join();
  dispatcher.join();
  // Drain whatever the racing rounds left queued, then everything decides.
  ASSERT_TRUE(engine.DispatchBatch().ok());
  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.opened, kWriters * kSessionsPerWriter);
  EXPECT_LE(stats.ingested, kWriters * kSessionsPerWriter * 16u);
  EXPECT_GT(stats.ingested, 0u);
  EXPECT_EQ(stats.live_sessions + stats.evicted, stats.opened);
}

TEST(ServingOptions, FromEnvParsesAndRejectsGarbage) {
  ServingOptions defaults;
  setenv("ETSC_SERVE_MAX_SESSIONS", "123", 1);
  setenv("ETSC_SERVE_BUDGET_MS", "250", 1);
  setenv("ETSC_SERVE_IDLE_MS", "garbage", 1);
  ServingOptions parsed = ServingOptions::FromEnv();
  EXPECT_EQ(parsed.max_sessions, 123u);
  EXPECT_DOUBLE_EQ(parsed.session_budget_seconds, 0.25);
  EXPECT_EQ(parsed.idle_timeout_seconds, defaults.idle_timeout_seconds);
  unsetenv("ETSC_SERVE_MAX_SESSIONS");
  unsetenv("ETSC_SERVE_BUDGET_MS");
  unsetenv("ETSC_SERVE_IDLE_MS");
  ServingOptions clean = ServingOptions::FromEnv();
  EXPECT_EQ(clean.max_sessions, defaults.max_sessions);
  EXPECT_EQ(clean.session_budget_seconds, defaults.session_budget_seconds);
}

}  // namespace
}  // namespace etsc
