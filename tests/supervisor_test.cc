// Supervisor tests: deterministic retry backoff, the failure taxonomy, the
// per-algorithm circuit breaker, watchdog cancellation through CancelToken,
// and the campaign fault matrix (flaky fits recover bit-identically, crashing
// algorithms are quarantined, hung predictions degrade to full-length
// misses). Everything here must be green under TSan: the watchdog is a real
// background thread and the campaign lanes run on the pool.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/deadline.h"
#include "core/evaluation.h"
#include "core/fault.h"
#include "core/json.h"
#include "core/parallel.h"
#include "core/supervisor.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

// ---------------------------------------------------------------------------
// Failure taxonomy
// ---------------------------------------------------------------------------

TEST(FailureTaxonomy, TransientCodesAreRetryable) {
  EXPECT_TRUE(IsTransientFailure(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsTransientFailure(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsTransientFailure(StatusCode::kUnavailable));
}

TEST(FailureTaxonomy, DeterministicCodesFailFast) {
  EXPECT_FALSE(IsTransientFailure(StatusCode::kOk));
  EXPECT_FALSE(IsTransientFailure(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsTransientFailure(StatusCode::kInternal));
  EXPECT_FALSE(IsTransientFailure(StatusCode::kDataLoss));
  EXPECT_FALSE(IsTransientFailure(StatusCode::kNotFound));
  EXPECT_FALSE(IsTransientFailure(StatusCode::kSkippedQuarantine));
}

TEST(FailureTaxonomy, NewCodesHaveNamesAndFactories) {
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_NE(Status::DeadlineExceeded("x").ToString().find("DeadlineExceeded"),
            std::string::npos);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_NE(Status::Unavailable("x").ToString().find("Unavailable"),
            std::string::npos);
  EXPECT_EQ(Status::SkippedQuarantine("x").code(),
            StatusCode::kSkippedQuarantine);
  EXPECT_NE(
      Status::SkippedQuarantine("x").ToString().find("SkippedQuarantine"),
      std::string::npos);
}

// ---------------------------------------------------------------------------
// Deterministic backoff
// ---------------------------------------------------------------------------

TEST(Backoff, PureFunctionOfPolicySeedAndAttempt) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10.0;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(BackoffDelayMs(policy, 42, attempt),
              BackoffDelayMs(policy, 42, attempt));
  }
  // Different seeds jitter differently (same envelope, different draw).
  EXPECT_NE(BackoffDelayMs(policy, 1, 1), BackoffDelayMs(policy, 2, 1));
}

TEST(Backoff, ExponentialEnvelopeWithJitterInHalfToFull) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 1000.0;
  for (uint64_t seed : {0ull, 7ull, 42ull, 12345ull}) {
    double envelope = policy.base_backoff_ms;
    for (int attempt = 1; attempt <= 10; ++attempt) {
      const double delay = BackoffDelayMs(policy, seed, attempt);
      const double cap = std::min(envelope, policy.max_backoff_ms);
      EXPECT_GE(delay, 0.5 * cap) << "seed " << seed << " attempt " << attempt;
      EXPECT_LT(delay, cap + 1e-9) << "seed " << seed << " attempt " << attempt;
      envelope *= policy.backoff_multiplier;
    }
    // Deep attempts stay under the cap forever.
    EXPECT_LE(BackoffDelayMs(policy, seed, 1000), policy.max_backoff_ms);
  }
}

TEST(SupervisorOptionsEnv, ReadsAndValidates) {
  ::setenv("ETSC_RETRY_MAX", "5", 1);
  ::setenv("ETSC_WATCHDOG_GRACE", "2.5", 1);
  ::setenv("ETSC_QUARANTINE_AFTER", "not-a-number", 1);
  const SupervisorOptions opts = SupervisorOptions::FromEnv();
  ::unsetenv("ETSC_RETRY_MAX");
  ::unsetenv("ETSC_WATCHDOG_GRACE");
  ::unsetenv("ETSC_QUARANTINE_AFTER");
  EXPECT_EQ(opts.retry.max_retries, 5);
  EXPECT_EQ(opts.watchdog_grace, 2.5);
  EXPECT_EQ(opts.quarantine_after, SupervisorOptions{}.quarantine_after);
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, TripsAfterConsecutiveDistinctDatasetFailures) {
  CircuitBreaker breaker(3);
  EXPECT_FALSE(breaker.RecordFailure("A", "d1"));
  EXPECT_FALSE(breaker.RecordFailure("A", "d2"));
  EXPECT_FALSE(breaker.IsQuarantined("A"));
  EXPECT_TRUE(breaker.RecordFailure("A", "d3"));  // third distinct dataset
  EXPECT_TRUE(breaker.IsQuarantined("A"));
  // The trip transition is reported exactly once.
  EXPECT_FALSE(breaker.RecordFailure("A", "d4"));
  // Other algorithms are unaffected.
  EXPECT_FALSE(breaker.IsQuarantined("B"));
}

TEST(CircuitBreakerTest, SameDatasetRepeatsCountOnce) {
  CircuitBreaker breaker(2);
  EXPECT_FALSE(breaker.RecordFailure("A", "d1"));
  EXPECT_FALSE(breaker.RecordFailure("A", "d1"));  // retry burst: one strike
  EXPECT_FALSE(breaker.RecordFailure("A", "d1"));
  EXPECT_FALSE(breaker.IsQuarantined("A"));
  EXPECT_TRUE(breaker.RecordFailure("A", "d2"));
}

TEST(CircuitBreakerTest, SuccessResetsTheStreak) {
  CircuitBreaker breaker(2);
  EXPECT_FALSE(breaker.RecordFailure("A", "d1"));
  breaker.RecordSuccess("A");
  EXPECT_FALSE(breaker.RecordFailure("A", "d2"));
  EXPECT_FALSE(breaker.IsQuarantined("A"));
  EXPECT_TRUE(breaker.RecordFailure("A", "d3"));
}

TEST(CircuitBreakerTest, ZeroThresholdDisablesTheBreaker) {
  CircuitBreaker breaker(0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(breaker.RecordFailure("A", "d" + std::to_string(i)));
  }
  EXPECT_FALSE(breaker.IsQuarantined("A"));
}

// ---------------------------------------------------------------------------
// CancelToken and the Deadline piggyback
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, CancellationFlowsThroughEveryDeadlineCheck) {
  auto token = std::make_shared<CancelToken>();
  ScopedCancelToken install(token);
  const Deadline infinite;
  const Deadline generous = Deadline::After(1000.0);
  EXPECT_FALSE(infinite.Expired());
  EXPECT_FALSE(generous.Expired());

  token->RequestCancel();
  // Cancellation reaches even infinite deadlines: that is what lets the
  // watchdog stop a hang whose budget logic is broken.
  EXPECT_TRUE(infinite.Expired());
  EXPECT_TRUE(generous.Expired());
  const Status status = generous.Check("op: budget exceeded");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("cancelled by watchdog"), std::string::npos);
  EXPECT_TRUE(infinite.CheckEvery(1));
}

TEST(CancelTokenTest, ScopedInstallRestoresThePreviousToken) {
  EXPECT_FALSE(CancellationRequested());
  auto outer = std::make_shared<CancelToken>();
  {
    ScopedCancelToken install_outer(outer);
    {
      auto inner = std::make_shared<CancelToken>();
      ScopedCancelToken install_inner(inner);
      inner->RequestCancel();
      EXPECT_TRUE(CancellationRequested());
    }
    // The inner scope's cancellation must not leak into the outer task.
    EXPECT_FALSE(CancellationRequested());
  }
  EXPECT_FALSE(CancellationRequested());
}

// ---------------------------------------------------------------------------
// Cheap deterministic classifier for retry/watchdog plumbing tests
// ---------------------------------------------------------------------------

/// Predicts the majority training label after one observation. Trivial but
/// fully deterministic, so retried runs must reproduce its scores exactly.
class MajorityClassifier : public EarlyClassifier {
 public:
  Status Fit(const Dataset& train) override {
    if (train.empty()) return Status::InvalidArgument("majority: empty train");
    std::map<int, size_t> counts;
    for (size_t i = 0; i < train.size(); ++i) ++counts[train.label(i)];
    majority_ = counts.begin()->first;
    for (const auto& [label, n] : counts) {
      if (n > counts[majority_]) majority_ = label;
    }
    fitted_ = true;
    return Status::OK();
  }
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override {
    if (!fitted_) return Status::FailedPrecondition("majority: not fitted");
    return EarlyPrediction{majority_, std::min<size_t>(1, series.length())};
  }
  std::string name() const override { return "majority"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<MajorityClassifier>();
  }

 private:
  int majority_ = 0;
  bool fitted_ = false;
};

/// Fit always returns the configured status; used to prove fail-fast.
class AlwaysFailsClassifier : public MajorityClassifier {
 public:
  explicit AlwaysFailsClassifier(Status status) : status_(std::move(status)) {}
  Status Fit(const Dataset&) override { return status_; }
  std::string name() const override { return "always-fails"; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<AlwaysFailsClassifier>(status_);
  }

 private:
  Status status_;
};

EvaluationOptions RetryOptions(int max_retries) {
  EvaluationOptions options;
  options.num_folds = 2;
  options.retry.max_retries = max_retries;
  options.retry.base_backoff_ms = 0.1;  // keep tests fast; jitter still runs
  return options;
}

TEST(Retry, FlakyFitRecoversWithBitIdenticalScores) {
  const Dataset data = testing::MakeToyDataset(8, 16);
  MajorityClassifier clean;
  const EvaluationResult baseline = CrossValidate(data, clean, RetryOptions(0));
  ASSERT_TRUE(baseline.trained());

  FlakyClassifier flaky(std::make_unique<MajorityClassifier>(), 1);
  const EvaluationResult retried = CrossValidate(data, flaky, RetryOptions(1));
  ASSERT_TRUE(retried.trained());
  ASSERT_EQ(retried.folds.size(), baseline.folds.size());
  for (size_t f = 0; f < retried.folds.size(); ++f) {
    EXPECT_EQ(retried.folds[f].fit_attempts, 2) << "fold " << f;
    EXPECT_TRUE(retried.folds[f].failure.empty()) << retried.folds[f].failure;
    // Recovery means *identical* results, not merely similar ones.
    EXPECT_EQ(retried.folds[f].scores.accuracy,
              baseline.folds[f].scores.accuracy);
    EXPECT_EQ(retried.folds[f].scores.harmonic_mean,
              baseline.folds[f].scores.harmonic_mean);
  }
}

TEST(Retry, ExhaustedRetriesRecordTheTransientFailure) {
  const Dataset data = testing::MakeToyDataset(8, 16);
  FlakyClassifier flaky(std::make_unique<MajorityClassifier>(), 3);
  const EvaluationResult result = CrossValidate(data, flaky, RetryOptions(1));
  ASSERT_FALSE(result.folds.empty());
  EXPECT_FALSE(result.folds[0].trained);
  EXPECT_EQ(result.folds[0].fit_attempts, 2);  // 1 try + 1 retry, both doomed
  EXPECT_EQ(result.folds[0].failure_code, StatusCode::kUnavailable);
  EXPECT_NE(result.folds[0].failure.find("injected flaky fit failure"),
            std::string::npos);
}

TEST(Retry, DeterministicFailuresFailFast) {
  const Dataset data = testing::MakeToyDataset(8, 16);
  AlwaysFailsClassifier broken(Status::InvalidArgument("bad config"));
  const EvaluationResult result = CrossValidate(data, broken, RetryOptions(5));
  ASSERT_FALSE(result.folds.empty());
  EXPECT_FALSE(result.folds[0].trained);
  // No retries were spent on a failure that retrying cannot fix.
  EXPECT_EQ(result.folds[0].fit_attempts, 1);
  EXPECT_EQ(result.folds[0].failure_code, StatusCode::kInvalidArgument);
}

TEST(Retry, BitIdenticalAcrossThreadPoolWidths) {
  const Dataset data = testing::MakeToyDataset(8, 16);
  const size_t original_width = MaxParallelism();
  std::vector<EvaluationResult> results;
  for (const size_t width : {size_t{1}, size_t{8}}) {
    SetMaxParallelism(width);
    FlakyClassifier flaky(std::make_unique<MajorityClassifier>(), 1);
    EvaluationOptions options = RetryOptions(1);
    options.num_folds = 4;
    results.push_back(CrossValidate(data, flaky, options));
  }
  SetMaxParallelism(original_width);
  ASSERT_EQ(results[0].folds.size(), results[1].folds.size());
  for (size_t f = 0; f < results[0].folds.size(); ++f) {
    EXPECT_EQ(results[0].folds[f].fit_attempts,
              results[1].folds[f].fit_attempts);
    EXPECT_EQ(results[0].folds[f].scores.accuracy,
              results[1].folds[f].scores.accuracy);
    EXPECT_EQ(results[0].folds[f].scores.harmonic_mean,
              results[1].folds[f].scores.harmonic_mean);
    EXPECT_EQ(results[0].folds[f].fold_seed, results[1].folds[f].fold_seed);
  }
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(WatchdogTest, CancelsAHungFit) {
  const Dataset data = testing::MakeToyDataset(6, 12);
  HangOptions hang;
  hang.hang_fit = true;
  HangingClassifier hung(std::make_unique<MajorityClassifier>(), hang);

  EvaluationOptions options;
  options.num_folds = 2;
  options.train_budget_seconds = 0.02;
  options.watchdog_grace = 2.0;  // cancel after ~0.04s of hanging
  const EvaluationResult result = CrossValidate(data, hung, options);
  ASSERT_FALSE(result.folds.empty());
  EXPECT_FALSE(result.folds[0].trained);
  EXPECT_EQ(result.folds[0].failure_code, StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.folds[0].failure.find("cancelled by watchdog"),
            std::string::npos)
      << result.folds[0].failure;
}

TEST(WatchdogTest, HungPredictionsDegradeToFullLengthMisses) {
  const Dataset data = testing::MakeToyDataset(6, 12);
  HangOptions hang;
  hang.hang_predict = true;
  HangingClassifier hung(std::make_unique<MajorityClassifier>(), hang);

  EvaluationOptions options;
  options.num_folds = 2;
  options.predict_budget_seconds = 0.01;
  options.watchdog_grace = 2.0;
  const EvaluationResult result = CrossValidate(data, hung, options);
  ASSERT_FALSE(result.folds.empty());
  for (const auto& fold : result.folds) {
    EXPECT_TRUE(fold.trained);  // training was fine; predictions hung
    EXPECT_EQ(fold.num_failed_predictions, fold.num_test);
    EXPECT_EQ(fold.scores.accuracy, 0.0);
    EXPECT_EQ(fold.scores.earliness, 1.0);
    EXPECT_NE(fold.failure.find("cancelled by watchdog"), std::string::npos)
        << fold.failure;
  }
}

TEST(WatchdogTest, DisabledGraceNeverCancels) {
  Watchdog::Watch watch("test-task", /*budget_seconds=*/0.001, /*grace=*/0.0);
  BurnWallClock(0.05);
  EXPECT_FALSE(watch.cancelled());
  EXPECT_FALSE(CancellationRequested());
}

TEST(WatchdogTest, WatchCancelsPastGraceTimesBudget) {
  Watchdog::Watch watch("test-task", /*budget_seconds=*/0.01, /*grace=*/2.0);
  // Cooperative poll loop, exactly what a budget-blind implementation's
  // Deadline::CheckEvery calls boil down to.
  const Deadline unbudgeted;
  Deadline safety = Deadline::After(10.0);
  while (!unbudgeted.CheckEvery(1) && !safety.Expired()) {
  }
  EXPECT_TRUE(watch.cancelled());
  EXPECT_TRUE(CancellationRequested());
}

// ---------------------------------------------------------------------------
// Campaign fault matrix: flaky recovers, crash quarantines, everything
// journals and reports; unaffected cells are bit-identical across widths.
// ---------------------------------------------------------------------------

bench::CampaignConfig FaultConfig(const std::string& cache_name) {
  bench::CampaignConfig config;
  config.algorithms = {"ECTS", "EDSC"};
  config.datasets = {"DodgerLoopGame", "DodgerLoopWeekend", "DodgerLoopDay"};
  config.folds = 2;
  config.height_scale = 1.0;
  config.train_budget_seconds = 30.0;
  config.supervisor.retry.max_retries = 1;
  config.supervisor.retry.base_backoff_ms = 0.1;
  config.supervisor.quarantine_after = 2;
  // ECTS needs one retry per fold; EDSC dies deterministically on the first
  // two datasets and must be quarantined on the third.
  config.fault_spec = "ECTS:flaky:1,EDSC:crash";
  config.cache_path = ::testing::TempDir() + cache_name;
  std::remove(config.cache_path.c_str());
  std::remove((config.cache_path + ".stale").c_str());
  std::remove((config.cache_path + ".report.json").c_str());
  return config;
}

TEST(CampaignSupervisor, FaultMatrixRunsToCompletion) {
  auto config = FaultConfig("fault_matrix.csv");
  bench::Campaign campaign(config);
  campaign.Run();

  // Flaky ECTS recovered everywhere, spending one retry per fold.
  for (const char* dataset :
       {"DodgerLoopGame", "DodgerLoopWeekend", "DodgerLoopDay"}) {
    const bench::CampaignCell* cell = campaign.Find("ECTS", dataset);
    ASSERT_NE(cell, nullptr) << dataset;
    EXPECT_TRUE(cell->trained) << dataset << ": " << cell->failure;
    EXPECT_EQ(cell->retries, 2) << dataset;  // 2 folds x 1 retry
    EXPECT_FALSE(cell->quarantined);
  }

  // Crashing EDSC failed fast twice (kInternal is not retried), then the
  // breaker quarantined it: the third cell was never attempted.
  for (const char* dataset : {"DodgerLoopGame", "DodgerLoopWeekend"}) {
    const bench::CampaignCell* cell = campaign.Find("EDSC", dataset);
    ASSERT_NE(cell, nullptr) << dataset;
    EXPECT_FALSE(cell->trained);
    EXPECT_FALSE(cell->quarantined);
    EXPECT_EQ(cell->retries, 0) << "deterministic failures must fail fast";
    EXPECT_NE(cell->failure.find("injected fit failure"), std::string::npos)
        << cell->failure;
  }
  const bench::CampaignCell* skipped = campaign.Find("EDSC", "DodgerLoopDay");
  ASSERT_NE(skipped, nullptr);
  EXPECT_FALSE(skipped->trained);
  EXPECT_TRUE(skipped->quarantined);
  EXPECT_NE(skipped->failure.find("SkippedQuarantine"), std::string::npos)
      << skipped->failure;

  // Retry counts and quarantine flags survive the journal round trip.
  auto reload_config = config;
  reload_config.report_only = true;
  bench::Campaign reloaded(reload_config);
  reloaded.Run();
  const bench::CampaignCell* ects = reloaded.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(ects, nullptr);
  EXPECT_EQ(ects->retries, 2);
  const bench::CampaignCell* edsc = reloaded.Find("EDSC", "DodgerLoopDay");
  ASSERT_NE(edsc, nullptr);
  EXPECT_TRUE(edsc->quarantined);
  EXPECT_NE(edsc->failure.find("SkippedQuarantine"), std::string::npos);

  // The JSON report enumerates the supervision outcome.
  std::ifstream in(campaign.ReportPath());
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto report = json::Parse(buffer.str());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->object.at("cells_quarantined").AsNumber(), 1.0);
  EXPECT_EQ(report->object.at("fit_retries").AsNumber(), 6.0);  // 3 cells x 2
  const auto& supervisor =
      report->object.at("config").object.at("supervisor").object;
  EXPECT_EQ(supervisor.at("max_retries").AsNumber(), 1.0);
  EXPECT_EQ(supervisor.at("quarantine_after").AsNumber(), 2.0);
  size_t quarantined_cells = 0;
  for (const auto& cell : report->object.at("cells").array) {
    if (cell.object.count("quarantined")) ++quarantined_cells;
  }
  EXPECT_EQ(quarantined_cells, 1u);
}

TEST(CampaignSupervisor, FaultedCampaignIsBitIdenticalAcrossWidths) {
  const size_t original_width = MaxParallelism();
  std::vector<std::vector<bench::CampaignCell>> runs;
  for (const size_t width : {size_t{1}, size_t{8}}) {
    SetMaxParallelism(width);
    auto config =
        FaultConfig("fault_width_" + std::to_string(width) + ".csv");
    bench::Campaign campaign(config);
    campaign.Run();
    runs.push_back(campaign.cells());
  }
  SetMaxParallelism(original_width);
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (size_t i = 0; i < runs[0].size(); ++i) {
    const auto& a = runs[0][i];
    const auto& b = runs[1][i];
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.dataset, b.dataset);
    EXPECT_EQ(a.trained, b.trained);
    EXPECT_EQ(a.quarantined, b.quarantined);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.failure, b.failure) << a.algorithm << "/" << a.dataset;
    EXPECT_EQ(a.accuracy, b.accuracy) << a.algorithm << "/" << a.dataset;
    EXPECT_EQ(a.f1, b.f1);
    EXPECT_EQ(a.earliness, b.earliness);
    EXPECT_EQ(a.harmonic_mean, b.harmonic_mean);
  }
}

TEST(CampaignSupervisor, RecoveredCellsMatchAFaultFreeRun) {
  // The flaky fault is transient: after its retry the cell must carry exactly
  // the scores a fault-free campaign computes.
  auto faulted_config = FaultConfig("fault_recovered.csv");
  bench::Campaign faulted(faulted_config);
  faulted.Run();

  auto clean_config = FaultConfig("fault_clean.csv");
  clean_config.algorithms = {"ECTS"};
  clean_config.fault_spec.clear();
  bench::Campaign clean(clean_config);
  clean.Run();

  for (const char* dataset :
       {"DodgerLoopGame", "DodgerLoopWeekend", "DodgerLoopDay"}) {
    const bench::CampaignCell* a = faulted.Find("ECTS", dataset);
    const bench::CampaignCell* b = clean.Find("ECTS", dataset);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->accuracy, b->accuracy) << dataset;
    EXPECT_EQ(a->f1, b->f1) << dataset;
    EXPECT_EQ(a->earliness, b->earliness) << dataset;
    EXPECT_EQ(a->harmonic_mean, b->harmonic_mean) << dataset;
    EXPECT_EQ(a->retries, 2) << dataset;
    EXPECT_EQ(b->retries, 0) << dataset;
  }
}

TEST(CampaignSupervisor, HungPredictCampaignDegradesToMisses) {
  bench::CampaignConfig config;
  config.algorithms = {"ECTS"};
  config.datasets = {"DodgerLoopGame"};
  config.folds = 2;
  config.height_scale = 1.0;
  config.train_budget_seconds = 30.0;
  // The hang ignores this budget entirely; only the watchdog (at
  // grace * budget = 0.02s per prediction) gets the cell unstuck.
  config.predict_budget_seconds = 0.01;
  config.supervisor.watchdog_grace = 2.0;
  config.fault_spec = "ECTS:hang-predict";
  config.cache_path = ::testing::TempDir() + "fault_hang.csv";
  std::remove(config.cache_path.c_str());
  std::remove((config.cache_path + ".stale").c_str());

  bench::Campaign campaign(config);
  campaign.Run();  // must terminate: every hung prediction is cancelled
  const bench::CampaignCell* cell = campaign.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(cell, nullptr);
  EXPECT_TRUE(cell->trained);  // training was unaffected
  EXPECT_EQ(cell->accuracy, 0.0);
  EXPECT_EQ(cell->earliness, 1.0);  // full-length misses
  EXPECT_NE(cell->failure.find("cancelled by watchdog"), std::string::npos)
      << cell->failure;
}

}  // namespace
}  // namespace etsc
