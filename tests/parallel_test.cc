#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "algos/ects.h"
#include "algos/edsc.h"
#include "bench/bench_common.h"
#include "core/deadline.h"
#include "core/evaluation.h"
#include "core/fault.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

/// Forces a pool width for one test and restores the ETSC_THREADS / hardware
/// default on scope exit, so tests cannot leak their width into each other.
class ScopedWidth {
 public:
  explicit ScopedWidth(size_t width) { SetMaxParallelism(width); }
  ~ScopedWidth() { SetMaxParallelism(0); }
};

// ---------------------------------------------------------------------------
// Pool lifecycle
// ---------------------------------------------------------------------------

TEST(ParallelPool, SetMaxParallelismResizesAndZeroRestoresTheDefault) {
  SetMaxParallelism(0);
  const size_t default_width = MaxParallelism();
  EXPECT_GE(default_width, 1u);

  SetMaxParallelism(3);
  EXPECT_EQ(MaxParallelism(), 3u);
  SetMaxParallelism(1);
  EXPECT_EQ(MaxParallelism(), 1u);
  SetMaxParallelism(0);
  EXPECT_EQ(MaxParallelism(), default_width);
}

TEST(ParallelPool, RepeatedResizeSurvivesLoopsInBetween) {
  for (size_t width : {1u, 4u, 2u, 8u, 1u}) {
    ScopedWidth scoped(width);
    std::atomic<size_t> sum{0};
    ParallelFor(100, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 5050u);
  }
}

// ---------------------------------------------------------------------------
// ParallelFor / ParallelForStatus semantics
// ---------------------------------------------------------------------------

TEST(ParallelFor, RunsEveryIterationExactlyOnce) {
  ScopedWidth scoped(4);
  std::vector<std::atomic<int>> counts(1000);
  ParallelFor(1000, [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, GrainBatchesWithoutDroppingTailIterations) {
  ScopedWidth scoped(4);
  std::vector<std::atomic<int>> counts(103);  // deliberately not % grain
  ParallelFor(
      103, [&](size_t i) { counts[i].fetch_add(1); }, /*grain=*/7);
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, WidthOneRunsInlineOnTheCallingThread) {
  ScopedWidth scoped(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(64);
  ParallelFor(64, [&](size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  ScopedWidth scoped(4);
  ParallelFor(0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, PropagatesExceptionsToTheCaller) {
  ScopedWidth scoped(4);
  EXPECT_THROW(ParallelFor(100,
                           [](size_t i) {
                             if (i == 37) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ParallelForStatus, LowestFailingIterationWinsDeterministically) {
  // Iteration 0 is always fetched before any failure can set the abort flag,
  // so with every iteration failing the reported error is index 0 regardless
  // of scheduling.
  for (size_t width : {1u, 8u}) {
    ScopedWidth scoped(width);
    const Status status = ParallelForStatus(200, [](size_t i) {
      return Status::Internal("fail at " + std::to_string(i));
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "fail at 0");
  }
}

TEST(ParallelForStatus, FailureSkipsIterationsThatHaveNotStarted) {
  ScopedWidth scoped(4);
  std::atomic<size_t> ran{0};
  const Status status = ParallelForStatus(100000, [&](size_t i) -> Status {
    ran.fetch_add(1);
    if (i == 0) return Status::Internal("early failure");
    return Status::OK();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_LT(ran.load(), 100000u);
}

TEST(ParallelForStatus, ExpiredDeadlineCancelsBeforeRunningBodies) {
  for (size_t width : {1u, 4u}) {
    ScopedWidth scoped(width);
    const Deadline expired = Deadline::After(0.0);
    std::atomic<size_t> ran{0};
    const Status status = ParallelForStatus(
        1000,
        [&](size_t) -> Status {
          ran.fetch_add(1);
          return Status::OK();
        },
        /*grain=*/1, &expired, "loop: budget exceeded");
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(status.message(), "loop: budget exceeded");
    EXPECT_EQ(ran.load(), 0u);
  }
}

TEST(ParallelForStatus, MidLoopExpiryStopsTheLoop) {
  ScopedWidth scoped(4);
  const Deadline deadline = Deadline::After(0.02);
  std::atomic<size_t> ran{0};
  const Status status = ParallelForStatus(
      100000,
      [&](size_t) -> Status {
        ran.fetch_add(1);
        BurnWallClock(0.001);
        return Status::OK();
      },
      /*grain=*/1, &deadline, "loop: budget exceeded");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(ran.load(), 100000u);
}

TEST(ParallelFor, NestedLoopsCompleteWithoutDeadlock) {
  ScopedWidth scoped(4);
  constexpr size_t kN = 24;
  std::vector<std::atomic<int>> cells(kN * kN);
  ParallelFor(kN, [&](size_t i) {
    ParallelFor(kN, [&](size_t j) { cells[i * kN + j].fetch_add(1); });
  });
  for (const auto& cell : cells) EXPECT_EQ(cell.load(), 1);
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

TEST(TaskGroup, RunsEveryTaskAndWaitsForAll) {
  ScopedWidth scoped(4);
  std::vector<std::atomic<int>> done(32);
  TaskGroup group;
  for (size_t t = 0; t < done.size(); ++t) {
    group.Run([&done, t]() -> Status {
      done[t].fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  for (const auto& flag : done) EXPECT_EQ(flag.load(), 1);
}

TEST(TaskGroup, FirstSubmittedFailureWinsAndAllTasksStillRun) {
  ScopedWidth scoped(4);
  std::atomic<size_t> ran{0};
  TaskGroup group;
  for (size_t t = 0; t < 16; ++t) {
    group.Run([&ran, t]() -> Status {
      ran.fetch_add(1);
      if (t % 3 == 2) {
        return Status::Internal("task " + std::to_string(t) + " failed");
      }
      return Status::OK();
    });
  }
  const Status status = group.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "task 2 failed");  // lowest failing submission
  EXPECT_EQ(ran.load(), 16u);  // TaskGroup never cancels dispatched work
}

TEST(TaskGroup, ExceptionsAreRethrownFromWait) {
  ScopedWidth scoped(4);
  TaskGroup group;
  group.Run([]() -> Status { throw std::runtime_error("task blew up"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskGroup, WidthOneRunsTasksInlineOnTheCallingThread) {
  ScopedWidth scoped(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id observed{};
  TaskGroup group;
  group.Run([&observed]() -> Status {
    observed = std::this_thread::get_id();
    return Status::OK();
  });
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(observed, caller);
}

TEST(TaskGroup, ExpiredDeadlineSkipsTheTaskEntirely) {
  ScopedWidth scoped(4);
  const Deadline expired = Deadline::After(0.0);
  std::atomic<bool> ran{false};
  TaskGroup group;
  group.Run(
      [&ran]() -> Status {
        ran.store(true);
        return Status::OK();
      },
      &expired);
  const Status status = group.Wait();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(ran.load());
}

TEST(TaskGroup, NestedGroupsInsidePoolTasksComplete) {
  ScopedWidth scoped(4);
  std::vector<std::atomic<int>> done(8 * 8);
  TaskGroup outer;
  for (size_t i = 0; i < 8; ++i) {
    outer.Run([&done, i]() -> Status {
      TaskGroup inner;
      for (size_t j = 0; j < 8; ++j) {
        inner.Run([&done, i, j]() -> Status {
          done[i * 8 + j].fetch_add(1);
          return Status::OK();
        });
      }
      return inner.Wait();
    });
  }
  EXPECT_TRUE(outer.Wait().ok());
  for (const auto& flag : done) EXPECT_EQ(flag.load(), 1);
}

// ---------------------------------------------------------------------------
// Determinism: serial and parallel CrossValidate agree bit-for-bit
// ---------------------------------------------------------------------------

void ExpectBitIdenticalCrossValidate(const Dataset& data,
                                     const EarlyClassifier& prototype) {
  EvaluationOptions options;
  options.num_folds = 3;

  SetMaxParallelism(1);
  const EvaluationResult serial = CrossValidate(data, prototype, options);
  SetMaxParallelism(8);
  const EvaluationResult parallel = CrossValidate(data, prototype, options);
  SetMaxParallelism(0);

  ASSERT_EQ(serial.folds.size(), parallel.folds.size());
  ASSERT_FALSE(serial.folds.empty());
  for (size_t f = 0; f < serial.folds.size(); ++f) {
    const FoldOutcome& s = serial.folds[f];
    const FoldOutcome& p = parallel.folds[f];
    EXPECT_EQ(s.trained, p.trained);
    EXPECT_EQ(s.fold_seed, p.fold_seed);
    // Exact equality on purpose: the determinism contract (DESIGN.md sec 8)
    // promises bit-identical scores, not scores within a tolerance.
    EXPECT_EQ(s.scores.accuracy, p.scores.accuracy);
    EXPECT_EQ(s.scores.f1, p.scores.f1);
    EXPECT_EQ(s.scores.earliness, p.scores.earliness);
    EXPECT_EQ(s.scores.harmonic_mean, p.scores.harmonic_mean);
    EXPECT_EQ(s.num_failed_predictions, p.num_failed_predictions);
  }
  const EvalScores serial_mean = serial.MeanScores();
  const EvalScores parallel_mean = parallel.MeanScores();
  EXPECT_EQ(serial_mean.accuracy, parallel_mean.accuracy);
  EXPECT_EQ(serial_mean.harmonic_mean, parallel_mean.harmonic_mean);
}

TEST(ParallelDeterminism, EctsCrossValidateIsBitIdentical) {
  const Dataset data = testing::MakeToyDataset(15, 24);
  EctsClassifier ects{EctsOptions{}};
  ExpectBitIdenticalCrossValidate(data, ects);
}

TEST(ParallelDeterminism, EdscCrossValidateIsBitIdentical) {
  const Dataset data = testing::MakeToyDataset(20, 40, 0.0, 3, 0.05);
  EdscClassifier edsc{EdscOptions{}};
  ExpectBitIdenticalCrossValidate(data, edsc);
}

TEST(ParallelDeterminism, FoldSeedsAreSplitNotDrawnInDispatchOrder) {
  // The per-fold seed must be a pure function of (options.seed, fold index).
  const Dataset data = testing::MakeToyDataset(12, 16);
  EctsClassifier ects{EctsOptions{}};
  EvaluationOptions options;
  options.num_folds = 4;
  options.seed = 123;
  const EvaluationResult result = CrossValidate(data, ects, options);
  ASSERT_EQ(result.folds.size(), 4u);
  for (size_t f = 0; f < result.folds.size(); ++f) {
    EXPECT_EQ(result.folds[f].fold_seed, SplitSeed(123, f));
  }
}

// ---------------------------------------------------------------------------
// Parallel campaign: interleaved journal appends reload cleanly
// ---------------------------------------------------------------------------

bench::CampaignConfig ParallelMiniConfig(const std::string& cache_name) {
  bench::CampaignConfig config;
  config.algorithms = {"ECTS"};
  config.datasets = {"DodgerLoopGame", "DodgerLoopWeekend"};
  config.folds = 2;
  config.height_scale = 1.0;
  config.train_budget_seconds = 30.0;
  config.cache_path = ::testing::TempDir() + cache_name;
  std::remove(config.cache_path.c_str());
  std::remove((config.cache_path + ".stale").c_str());
  return config;
}

TEST(ParallelCampaign, ConcurrentCellsJournalWholeRowsThatReload) {
  ScopedWidth scoped(4);
  auto config = ParallelMiniConfig("journal_parallel.csv");
  bench::Campaign campaign(config);
  campaign.Run();
  ASSERT_EQ(campaign.cells().size(), 2u);
  for (const auto& dataset : config.datasets) {
    const bench::CampaignCell* cell = campaign.Find("ECTS", dataset);
    ASSERT_NE(cell, nullptr) << dataset;
    EXPECT_TRUE(cell->trained) << dataset;
  }

  // Every row written by the concurrent cells must parse back whole.
  auto reload_config = config;
  reload_config.report_only = true;
  bench::Campaign reloaded(reload_config);
  reloaded.Run();
  for (const auto& dataset : config.datasets) {
    const bench::CampaignCell* computed = campaign.Find("ECTS", dataset);
    const bench::CampaignCell* loaded = reloaded.Find("ECTS", dataset);
    ASSERT_NE(loaded, nullptr) << dataset;
    EXPECT_EQ(loaded->trained, computed->trained);
    EXPECT_NEAR(loaded->accuracy, computed->accuracy, 1e-12);
    EXPECT_NEAR(loaded->harmonic_mean, computed->harmonic_mean, 1e-12);
  }
}

TEST(ParallelCampaign, SerialAndParallelCampaignsProduceIdenticalCells) {
  SetMaxParallelism(1);
  auto serial_config = ParallelMiniConfig("journal_campaign_serial.csv");
  bench::Campaign serial(serial_config);
  serial.Run();

  SetMaxParallelism(4);
  auto parallel_config = ParallelMiniConfig("journal_campaign_parallel.csv");
  bench::Campaign parallel(parallel_config);
  parallel.Run();
  SetMaxParallelism(0);

  ASSERT_EQ(serial.cells().size(), parallel.cells().size());
  for (size_t c = 0; c < serial.cells().size(); ++c) {
    const bench::CampaignCell& s = serial.cells()[c];
    const bench::CampaignCell& p = parallel.cells()[c];
    EXPECT_EQ(s.algorithm, p.algorithm);  // deterministic publication order
    EXPECT_EQ(s.dataset, p.dataset);
    EXPECT_EQ(s.trained, p.trained);
    EXPECT_EQ(s.accuracy, p.accuracy);  // bit-identical, not merely close
    EXPECT_EQ(s.f1, p.f1);
    EXPECT_EQ(s.earliness, p.earliness);
    EXPECT_EQ(s.harmonic_mean, p.harmonic_mean);
  }
}

}  // namespace
}  // namespace etsc
