#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"
#include "tsc/minirocket.h"
#include "tsc/mlstm.h"

namespace etsc {
namespace {

using testing::FullAccuracy;
using testing::MakeToyDataset;
using testing::MakeToyMultivariate;

TEST(MiniRocketKernels, Exactly84DistinctTriples) {
  const auto& triples = MiniRocketKernelTriples();
  std::set<std::array<size_t, 3>> distinct(triples.begin(), triples.end());
  EXPECT_EQ(distinct.size(), 84u);
  for (const auto& t : triples) {
    EXPECT_LT(t[0], t[1]);
    EXPECT_LT(t[1], t[2]);
    EXPECT_LT(t[2], 9u);
  }
}

TEST(MiniRocket, FeatureVectorDimensionStable) {
  Dataset d = MakeToyDataset(10, 30);
  MiniRocketClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  auto f1 = model.Transform(d.instance(0));
  auto f2 = model.Transform(d.instance(1));
  ASSERT_TRUE(f1.ok() && f2.ok());
  EXPECT_EQ(f1->size(), f2->size());
  EXPECT_EQ(f1->size(), model.num_features());
}

TEST(MiniRocket, PpvFeaturesWithinUnitInterval) {
  Dataset d = MakeToyDataset(10, 30);
  MiniRocketClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  auto features = model.Transform(d.instance(0));
  ASSERT_TRUE(features.ok());
  for (double v : *features) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(MiniRocket, TrainAccuracyHigh) {
  Dataset d = MakeToyDataset(20, 40);
  MiniRocketClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(FullAccuracy(model, d), 0.95);
}

TEST(MiniRocket, LogisticHeadAboveThreshold) {
  MiniRocketOptions options;
  options.logistic_above_samples = 10;  // force the logistic path
  MiniRocketClassifier model(options);
  Dataset d = MakeToyDataset(15, 30);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(FullAccuracy(model, d), 0.9);
}

TEST(MiniRocket, MultivariateChannelMixing) {
  Dataset mv = MakeToyMultivariate(15, 30);
  MiniRocketClassifier model;
  ASSERT_TRUE(model.Fit(mv).ok());
  EXPECT_GE(FullAccuracy(model, mv), 0.9);
}

TEST(MiniRocket, RejectsDegenerateInput) {
  MiniRocketClassifier model;
  EXPECT_FALSE(model.Fit(Dataset()).ok());
  EXPECT_FALSE(model.Transform(TimeSeries::Univariate({1, 2})).ok());
}

TEST(MiniRocket, DeterministicUnderSeed) {
  Dataset d = MakeToyDataset(12, 24);
  MiniRocketClassifier a, b;
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  auto fa = a.Transform(d.instance(0));
  auto fb = b.Transform(d.instance(0));
  ASSERT_TRUE(fa.ok() && fb.ok());
  EXPECT_EQ(*fa, *fb);
}

TEST(Mlstm, LearnsUnivariate) {
  MlstmOptions options;
  options.epochs = 30;
  MlstmClassifier model(options);
  Dataset d = MakeToyDataset(15, 24, 0.0, 3, 0.05);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(FullAccuracy(model, d), 0.85);
}

TEST(Mlstm, ProbaSumsToOne) {
  MlstmOptions options;
  options.epochs = 5;
  MlstmClassifier model(options);
  Dataset mv = MakeToyMultivariate(8, 16);
  ASSERT_TRUE(model.Fit(mv).ok());
  auto proba = model.PredictProba(mv.instance(0));
  ASSERT_TRUE(proba.ok());
  double total = 0.0;
  for (double p : *proba) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(proba->size(), 3u);
}

TEST(Mlstm, HandlesShorterAndLongerInputAtPredict) {
  MlstmOptions options;
  options.epochs = 3;
  MlstmClassifier model(options);
  Dataset d = MakeToyDataset(8, 20);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_TRUE(model.Predict(d.instance(0).Prefix(10)).ok());
  // Longer than fit length: truncated internally.
  TimeSeries longer = TimeSeries::Univariate(std::vector<double>(40, 0.5));
  EXPECT_TRUE(model.Predict(longer).ok());
}

TEST(Mlstm, PredictBeforeFitFails) {
  MlstmClassifier model;
  EXPECT_FALSE(model.Predict(TimeSeries::Univariate({1, 2, 3})).ok());
}

TEST(Mlstm, SingleClassDegenerates) {
  MlstmClassifier model;
  Dataset d("one", {TimeSeries::Univariate({1, 2, 3}),
                    TimeSeries::Univariate({2, 3, 4})},
            {7, 7});
  ASSERT_TRUE(model.Fit(d).ok());
  auto pred = model.Predict(d.instance(0));
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(*pred, 7);
}

}  // namespace
}  // namespace etsc
