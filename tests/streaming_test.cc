#include "core/streaming.h"

#include <gtest/gtest.h>

#include <memory>

#include "algos/ects.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

/// Commits with label 1 as soon as it has seen `need` points (prefix < buffer
/// signals an early commitment to the session).
class FixedNeed : public EarlyClassifier {
 public:
  explicit FixedNeed(size_t need) : need_(need) {}
  Status Fit(const Dataset&) override { return Status::OK(); }
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override {
    if (series.length() == 0) {
      return Status::InvalidArgument("empty series");
    }
    return EarlyPrediction{1, std::min(need_, series.length())};
  }
  std::string name() const override { return "fixed"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<FixedNeed>(need_);
  }

 private:
  size_t need_;
};

TEST(StreamingSession, CommitsOncePrefixFitsInsideBuffer) {
  FixedNeed model(3);
  StreamingSession session(model, 1);
  for (int t = 0; t < 3; ++t) {
    auto out = session.Push({static_cast<double>(t)});
    ASSERT_TRUE(out.ok());
    EXPECT_FALSE(out->has_value()) << "at t=" << t;
  }
  // At the 4th point the model still only needs 3 < 4: decision is final.
  auto out = session.Push({3.0});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ((*out)->label, 1);
  EXPECT_EQ((*out)->prefix_length, 3u);
}

TEST(StreamingSession, DecisionSticksAfterCommitment) {
  FixedNeed model(2);
  StreamingSession session(model, 1);
  (void)session.Push({0.0});
  (void)session.Push({1.0});
  auto first = session.Push({2.0});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  auto second = session.Push({99.0});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->prefix_length, (*first)->prefix_length);
}

TEST(StreamingSession, FinishForcesDecision) {
  FixedNeed model(100);  // never commits early
  StreamingSession session(model, 1);
  (void)session.Push({0.0});
  (void)session.Push({1.0});
  auto decision = session.Finish();
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->prefix_length, 2u);
  EXPECT_TRUE(session.decision().has_value());
}

TEST(StreamingSession, FinishWithoutDataFails) {
  FixedNeed model(1);
  StreamingSession session(model, 1);
  EXPECT_FALSE(session.Finish().ok());
}

TEST(StreamingSession, RejectsWrongVariableCount) {
  FixedNeed model(1);
  StreamingSession session(model, 2);
  auto out = session.Push({1.0});
  EXPECT_FALSE(out.ok());
}

TEST(StreamingSession, WrongArityLeavesBufferUntouched) {
  FixedNeed model(100);
  StreamingSession session(model, 2);
  auto bad = session.Push({1.0});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(session.observed(), 0u);
  // A malformed observation must not have left a ragged buffer behind: the
  // session keeps working with well-formed observations.
  auto good = session.Push({1.0, 2.0});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(session.observed(), 1u);
  auto finished = session.Finish();
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(finished->prefix_length, 1u);
}

TEST(StreamingSession, WrongArityRejectedEvenAfterDecision) {
  FixedNeed model(1);
  StreamingSession session(model, 1);
  (void)session.Push({0.0});
  (void)session.Push({1.0});
  ASSERT_TRUE(session.decision().has_value());
  // The sticky-decision shortcut must not mask a malformed observation.
  auto bad = session.Push({1.0, 2.0});
  EXPECT_FALSE(bad.ok());
  auto good = session.Push({3.0});
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->has_value());
}

TEST(StreamingSession, ResetStartsOver) {
  FixedNeed model(1);
  StreamingSession session(model, 1);
  (void)session.Push({0.0});
  (void)session.Push({1.0});
  ASSERT_TRUE(session.decision().has_value());
  session.Reset();
  EXPECT_EQ(session.observed(), 0u);
  EXPECT_FALSE(session.decision().has_value());
  auto out = session.Push({5.0});
  ASSERT_TRUE(out.ok());
}

TEST(StreamingSession, MatchesBatchPredictionWithRealAlgorithm) {
  // Streaming an instance point-by-point must reach the same label as the
  // batch PredictEarly, and commit no later.
  Dataset d = testing::MakeToyDataset(15, 24, 0.0, 3, 0.05);
  EctsClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());

  const TimeSeries& instance = d.instance(0);
  auto batch = model.PredictEarly(instance);
  ASSERT_TRUE(batch.ok());

  StreamingSession session(model, 1);
  std::optional<EarlyPrediction> streamed;
  for (size_t t = 0; t < instance.length() && !streamed.has_value(); ++t) {
    auto out = session.Push({instance.at(0, t)});
    ASSERT_TRUE(out.ok());
    streamed = *out;
  }
  if (!streamed.has_value()) {
    auto finished = session.Finish();
    ASSERT_TRUE(finished.ok());
    streamed = *finished;
  }
  EXPECT_EQ(streamed->label, batch->label);
  EXPECT_LE(streamed->prefix_length, instance.length());
}

}  // namespace
}  // namespace etsc
