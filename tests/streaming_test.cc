#include "core/streaming.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "algos/ects.h"
#include "core/counters.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

/// Commits with label 1 as soon as it has seen `need` points (prefix < buffer
/// signals an early commitment to the session).
class FixedNeed : public EarlyClassifier {
 public:
  explicit FixedNeed(size_t need) : need_(need) {}
  Status Fit(const Dataset&) override { return Status::OK(); }
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override {
    if (series.length() == 0) {
      return Status::InvalidArgument("empty series");
    }
    return EarlyPrediction{1, std::min(need_, series.length())};
  }
  std::string name() const override { return "fixed"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<FixedNeed>(need_);
  }

 private:
  size_t need_;
};

TEST(StreamingSession, CommitsOncePrefixFitsInsideBuffer) {
  FixedNeed model(3);
  StreamingSession session(model, 1);
  for (int t = 0; t < 3; ++t) {
    auto out = session.Push({static_cast<double>(t)});
    ASSERT_TRUE(out.ok());
    EXPECT_FALSE(out->has_value()) << "at t=" << t;
  }
  // At the 4th point the model still only needs 3 < 4: decision is final.
  auto out = session.Push({3.0});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ((*out)->label, 1);
  EXPECT_EQ((*out)->prefix_length, 3u);
}

TEST(StreamingSession, DecisionSticksAfterCommitment) {
  FixedNeed model(2);
  StreamingSession session(model, 1);
  (void)session.Push({0.0});
  (void)session.Push({1.0});
  auto first = session.Push({2.0});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  auto second = session.Push({99.0});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->prefix_length, (*first)->prefix_length);
}

TEST(StreamingSession, FinishForcesDecision) {
  FixedNeed model(100);  // never commits early
  StreamingSession session(model, 1);
  (void)session.Push({0.0});
  (void)session.Push({1.0});
  auto decision = session.Finish();
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->prefix_length, 2u);
  EXPECT_TRUE(session.decision().has_value());
}

TEST(StreamingSession, FinishWithoutDataFails) {
  FixedNeed model(1);
  StreamingSession session(model, 1);
  EXPECT_FALSE(session.Finish().ok());
}

TEST(StreamingSession, RejectsWrongVariableCount) {
  FixedNeed model(1);
  StreamingSession session(model, 2);
  auto out = session.Push({1.0});
  EXPECT_FALSE(out.ok());
}

TEST(StreamingSession, WrongArityLeavesBufferUntouched) {
  FixedNeed model(100);
  StreamingSession session(model, 2);
  auto bad = session.Push({1.0});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(session.observed(), 0u);
  // A malformed observation must not have left a ragged buffer behind: the
  // session keeps working with well-formed observations.
  auto good = session.Push({1.0, 2.0});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(session.observed(), 1u);
  auto finished = session.Finish();
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(finished->prefix_length, 1u);
}

TEST(StreamingSession, WrongArityRejectedEvenAfterDecision) {
  FixedNeed model(1);
  StreamingSession session(model, 1);
  (void)session.Push({0.0});
  (void)session.Push({1.0});
  ASSERT_TRUE(session.decision().has_value());
  // The sticky-decision shortcut must not mask a malformed observation.
  auto bad = session.Push({1.0, 2.0});
  EXPECT_FALSE(bad.ok());
  auto good = session.Push({3.0});
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->has_value());
}

TEST(StreamingSession, ResetStartsOver) {
  FixedNeed model(1);
  StreamingSession session(model, 1);
  (void)session.Push({0.0});
  (void)session.Push({1.0});
  ASSERT_TRUE(session.decision().has_value());
  session.Reset();
  EXPECT_EQ(session.observed(), 0u);
  EXPECT_FALSE(session.decision().has_value());
  auto out = session.Push({5.0});
  ASSERT_TRUE(out.ok());
}

/// Like FixedNeed but counts PredictEarly invocations, so tests can assert
/// the sticky-decision shortcut really skips the classifier.
class CountingNeed : public EarlyClassifier {
 public:
  explicit CountingNeed(size_t need) : need_(need) {}
  Status Fit(const Dataset&) override { return Status::OK(); }
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (series.length() == 0) {
      return Status::InvalidArgument("empty series");
    }
    return EarlyPrediction{1, std::min(need_, series.length())};
  }
  std::string name() const override { return "counting"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<CountingNeed>(need_);
  }
  int calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  size_t need_;
  mutable std::atomic<int> calls_{0};
};

TEST(StreamingSession, FinishWithoutDataIsInvalidArgument) {
  FixedNeed model(1);
  StreamingSession session(model, 1);
  auto finished = session.Finish();
  ASSERT_FALSE(finished.ok());
  EXPECT_EQ(finished.status().code(), StatusCode::kInvalidArgument);
  // The failed Finish left no decision behind: the session still works.
  auto out = session.Push({1.0});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(session.Finish().ok());
}

TEST(StreamingSession, FinishIsStickyLikePush) {
  CountingNeed model(100);  // never commits early
  StreamingSession session(model, 1);
  (void)session.Push({0.0});
  const int calls_before = model.calls();
  auto first = session.Finish();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(model.calls(), calls_before + 1);
  // Second Finish (and Push after a decision) answer from the sticky
  // decision without re-running the classifier.
  auto second = session.Finish();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->label, first->label);
  EXPECT_EQ(second->prefix_length, first->prefix_length);
  auto pushed = session.Push({1.0});
  ASSERT_TRUE(pushed.ok());
  EXPECT_EQ((*pushed)->prefix_length, first->prefix_length);
  EXPECT_EQ(model.calls(), calls_before + 1);
}

TEST(StreamingSession, ResetClearsDecisionAndSessionDecidesAgain) {
  FixedNeed model(2);
  StreamingSession session(model, 1);
  for (int t = 0; t < 3; ++t) (void)session.Push({static_cast<double>(t)});
  ASSERT_TRUE(session.decision().has_value());
  session.Reset();
  EXPECT_FALSE(session.decision().has_value());
  EXPECT_EQ(session.observed(), 0u);
  // The reused session reaches a fresh decision through the normal path.
  for (int t = 0; t < 3; ++t) (void)session.Push({static_cast<double>(t)});
  ASSERT_TRUE(session.decision().has_value());
  EXPECT_EQ(session.decision()->prefix_length, 2u);
}

TEST(StreamingSession, ExpectedLengthHintMakesPushesAllocationFree) {
  Counter& grows = MetricRegistry::Global().counter("timeseries.append_grows");
  FixedNeed model(100000);  // never commits: every push hits the buffer
  const size_t n = 500;

  StreamingSession hinted(model, 1, n);
  const uint64_t before_hinted = grows.value();
  for (size_t t = 0; t < n; ++t) (void)hinted.Push({static_cast<double>(t)});
  EXPECT_EQ(grows.value() - before_hinted, 0u)
      << "a correctly hinted session must never regrow its buffer";

  StreamingSession unhinted(model, 1);
  const uint64_t before_unhinted = grows.value();
  for (size_t t = 0; t < n; ++t) (void)unhinted.Push({static_cast<double>(t)});
  const uint64_t unhinted_grows = grows.value() - before_unhinted;
  EXPECT_GT(unhinted_grows, 0u);
  EXPECT_LE(unhinted_grows, 10u)
      << "growth must be geometric (O(log n) regrows), not per-push";
}

TEST(StreamingSession, ResetShrinksAnOvergrownBuffer) {
  Counter& shrinks =
      MetricRegistry::Global().counter("streaming.buffer_shrinks");
  FixedNeed model(1000000);
  StreamingSession session(model, 1, 16);
  // One unusually long stream balloons the capacity far past the hint...
  for (size_t t = 0; t < 4096; ++t) (void)session.Push({0.0});
  ASSERT_GE(session.buffer_capacity(), 4096u);
  const uint64_t before = shrinks.value();
  session.Reset();
  // ...and Reset releases it back to the hint instead of pinning ~4k slots
  // per channel for the session's remaining lifetime.
  EXPECT_EQ(shrinks.value() - before, 1u);
  EXPECT_LE(session.buffer_capacity(), 16u);
  // A short stream's capacity is within the keep threshold: Reset reuses it.
  for (size_t t = 0; t < 16; ++t) (void)session.Push({0.0});
  const uint64_t before_small = shrinks.value();
  const size_t capacity_small = session.buffer_capacity();
  session.Reset();
  EXPECT_EQ(shrinks.value() - before_small, 0u);
  EXPECT_EQ(session.buffer_capacity(), capacity_small);
}

TEST(StreamingSession, ManySessionsShareOneClassifierConcurrently) {
  // One const fitted model, many sessions across threads: the TSan build of
  // this test is the proof that PredictEarly is safely shareable read-only.
  Dataset d = testing::MakeToyDataset(10, 16, 0.0, 3, 0.05);
  EctsClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  const EarlyClassifier& shared = model;

  constexpr size_t kThreads = 8;
  constexpr size_t kSessionsPerThread = 4;
  std::vector<EarlyPrediction> results(kThreads * kSessionsPerThread);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (size_t s = 0; s < kSessionsPerThread; ++s) {
        const TimeSeries& instance = d.instance(0);
        StreamingSession session(shared, 1, instance.length());
        std::optional<EarlyPrediction> decided;
        for (size_t t = 0; t < instance.length() && !decided.has_value();
             ++t) {
          auto out = session.Push({instance.at(0, t)});
          ASSERT_TRUE(out.ok());
          decided = *out;
        }
        if (!decided.has_value()) {
          auto finished = session.Finish();
          ASSERT_TRUE(finished.ok());
          decided = *finished;
        }
        results[w * kSessionsPerThread + s] = *decided;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const EarlyPrediction& r : results) {
    EXPECT_EQ(r.label, results[0].label);
    EXPECT_EQ(r.prefix_length, results[0].prefix_length);
  }
}

TEST(StreamingSession, MatchesBatchPredictionWithRealAlgorithm) {
  // Streaming an instance point-by-point must reach the same label as the
  // batch PredictEarly, and commit no later.
  Dataset d = testing::MakeToyDataset(15, 24, 0.0, 3, 0.05);
  EctsClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());

  const TimeSeries& instance = d.instance(0);
  auto batch = model.PredictEarly(instance);
  ASSERT_TRUE(batch.ok());

  StreamingSession session(model, 1);
  std::optional<EarlyPrediction> streamed;
  for (size_t t = 0; t < instance.length() && !streamed.has_value(); ++t) {
    auto out = session.Push({instance.at(0, t)});
    ASSERT_TRUE(out.ok());
    streamed = *out;
  }
  if (!streamed.has_value()) {
    auto finished = session.Finish();
    ASSERT_TRUE(finished.ok());
    streamed = *finished;
  }
  EXPECT_EQ(streamed->label, batch->label);
  EXPECT_LE(streamed->prefix_length, instance.length());
}

}  // namespace
}  // namespace etsc
