#include "ml/linear.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace etsc {
namespace {

TEST(SparseVector, SortAndMergeCombinesDuplicates) {
  SparseVector v;
  v.Add(5, 1.0);
  v.Add(2, 2.0);
  v.Add(5, 3.0);
  v.SortAndMerge();
  ASSERT_EQ(v.entries.size(), 2u);
  EXPECT_EQ(v.entries[0].first, 2u);
  EXPECT_DOUBLE_EQ(v.entries[0].second, 2.0);
  EXPECT_EQ(v.entries[1].first, 5u);
  EXPECT_DOUBLE_EQ(v.entries[1].second, 4.0);
}

TEST(SparseVector, DotIgnoresOutOfRange) {
  SparseVector v;
  v.Add(0, 2.0);
  v.Add(9, 5.0);
  EXPECT_DOUBLE_EQ(v.Dot({3.0, 1.0}), 6.0);
}

TEST(SparseVector, L2Norm) {
  SparseVector v;
  v.Add(0, 3.0);
  v.Add(1, 4.0);
  EXPECT_DOUBLE_EQ(v.L2Norm(), 5.0);
}

TEST(LogisticRegression, SeparatesLinearlySeparable) {
  Rng rng(31);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    const double v = rng.Uniform(-1, 1);
    x.push_back({v, rng.Gaussian(0, 0.1)});
    y.push_back(v > 0 ? 1 : -1);
  }
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  auto pred = model.Predict({0.9, 0.0});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(*pred, 1);
  pred = model.Predict({-0.9, 0.0});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(*pred, -1);
}

TEST(LogisticRegression, MulticlassSoftmaxSane) {
  Rng rng(32);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      x.push_back({static_cast<double>(c) + rng.Gaussian(0, 0.1)});
      y.push_back(c);
    }
  }
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  auto proba = model.PredictProba({1.0});
  ASSERT_TRUE(proba.ok());
  ASSERT_EQ(proba->size(), 3u);
  double total = 0.0;
  for (double p : *proba) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT((*proba)[1], (*proba)[0]);
  EXPECT_GT((*proba)[1], (*proba)[2]);
}

TEST(LogisticRegression, SparseFitMatchesUsage) {
  Rng rng(33);
  std::vector<SparseVector> rows(40);
  std::vector<int> y(40);
  for (int i = 0; i < 40; ++i) {
    const bool positive = i % 2 == 0;
    rows[i].Add(positive ? 0 : 1, 1.0);
    rows[i].SortAndMerge();
    y[i] = positive ? 1 : 0;
  }
  LogisticRegression model;
  ASSERT_TRUE(model.FitSparse(rows, 2, y, &rng).ok());
  SparseVector q;
  q.Add(0, 1.0);
  auto pred = model.PredictSparse(q);
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(*pred, 1);
}

TEST(LogisticRegression, RequiresRng) {
  LogisticRegression model;
  EXPECT_FALSE(model.Fit({{1.0}}, {0}, nullptr).ok());
}

TEST(LogisticRegression, PredictBeforeFitFails) {
  LogisticRegression model;
  EXPECT_FALSE(model.Predict({1.0}).ok());
}

TEST(SolveSpdFn, SolvesIdentity) {
  std::vector<double> x;
  ASSERT_TRUE(SolveSpd({{1.0, 0.0}, {0.0, 1.0}}, {3.0, 4.0}, &x).ok());
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 4.0, 1e-12);
}

TEST(SolveSpdFn, SolvesGeneralSpd) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
  std::vector<double> x;
  ASSERT_TRUE(SolveSpd({{4.0, 2.0}, {2.0, 3.0}}, {10.0, 8.0}, &x).ok());
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 10.0, 1e-9);
  EXPECT_NEAR(2 * x[0] + 3 * x[1], 8.0, 1e-9);
}

TEST(SolveSpdFn, RejectsIndefinite) {
  std::vector<double> x;
  EXPECT_FALSE(SolveSpd({{0.0, 0.0}, {0.0, 0.0}}, {1.0, 1.0}, &x).ok());
}

TEST(SolveSpdFn, RejectsBadDimensions) {
  std::vector<double> x;
  EXPECT_FALSE(SolveSpd({{1.0}}, {1.0, 2.0}, &x).ok());
}

TEST(RidgeClassifier, PrimalPathSeparates) {
  // More samples than features -> primal normal equations.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 50; ++i) {
    const double v = i < 25 ? -1.0 : 1.0;
    x.push_back({v + 0.01 * i, 1.0});
    y.push_back(v < 0 ? 0 : 1);
  }
  RidgeClassifier model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  auto pred = model.Predict({-1.0, 1.0});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(*pred, 0);
}

TEST(RidgeClassifier, DualPathSeparates) {
  // Fewer samples than features -> dual (Gram) system.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(34);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> row(30, 0.0);
    for (auto& v : row) v = rng.Gaussian(0, 0.05);
    row[0] = i < 5 ? -1.0 : 1.0;
    x.push_back(std::move(row));
    y.push_back(i < 5 ? 0 : 1);
  }
  RidgeClassifier model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  size_t correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    auto pred = model.Predict(x[i]);
    if (pred.ok() && *pred == y[i]) ++correct;
  }
  EXPECT_EQ(correct, x.size());
}

TEST(RidgeClassifier, ProbaSumsToOne) {
  RidgeClassifier model;
  ASSERT_TRUE(model.Fit({{0.0}, {1.0}, {2.0}, {3.0}}, {0, 0, 1, 1}).ok());
  auto proba = model.PredictProba({1.5});
  ASSERT_TRUE(proba.ok());
  EXPECT_NEAR((*proba)[0] + (*proba)[1], 1.0, 1e-9);
}

TEST(RidgeClassifier, InputValidation) {
  RidgeClassifier model;
  EXPECT_FALSE(model.Fit({}, {}).ok());
  EXPECT_FALSE(model.Fit({{1.0}}, {0, 1}).ok());
  EXPECT_FALSE(model.Predict({1.0}).ok());
}

}  // namespace
}  // namespace etsc
