// Neural-network substrate tests, including finite-difference gradient checks
// of every layer used by MLSTM-FCN.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/rng.h"
#include "ml/nn/layers.h"
#include "ml/nn/lstm.h"
#include "ml/nn/tensor.h"

namespace etsc::nn {
namespace {

Batch RandomBatch(size_t n, size_t channels, size_t time, Rng* rng) {
  Batch batch(n);
  for (auto& fm : batch) {
    fm = MakeMap(channels, time);
    for (auto& c : fm) {
      for (double& v : c) v = rng->Gaussian();
    }
  }
  return batch;
}

// Weighted sum of a batch with fixed coefficients: a scalar loss whose
// gradient w.r.t. the batch is exactly the coefficients.
double WeightedSum(const Batch& batch, const Batch& coeffs) {
  double sum = 0.0;
  for (size_t b = 0; b < batch.size(); ++b) {
    for (size_t c = 0; c < batch[b].size(); ++c) {
      for (size_t t = 0; t < batch[b][c].size(); ++t) {
        sum += batch[b][c][t] * coeffs[b][c][t];
      }
    }
  }
  return sum;
}

// Central finite difference of `loss` w.r.t. one scalar location.
double NumericalGrad(const std::function<double()>& loss, double* x,
                     double eps = 1e-5) {
  const double saved = *x;
  *x = saved + eps;
  const double up = loss();
  *x = saved - eps;
  const double down = loss();
  *x = saved;
  return (up - down) / (2.0 * eps);
}

TEST(Conv1D, GradientCheckInputAndParams) {
  Rng rng(71);
  Conv1D conv(2, 3, 3, &rng);
  Batch input = RandomBatch(2, 2, 7, &rng);
  Batch coeffs = RandomBatch(2, 3, 7, &rng);

  auto loss = [&]() { return WeightedSum(conv.Forward(input), coeffs); };
  loss();  // populate caches
  Batch grad_in = conv.Backward(coeffs);

  // Input gradient.
  for (size_t c = 0; c < 2; ++c) {
    for (size_t t = 0; t < 7; t += 3) {
      const double num = NumericalGrad(loss, &input[0][c][t]);
      EXPECT_NEAR(grad_in[0][c][t], num, 1e-6) << "c=" << c << " t=" << t;
    }
  }
  // Weight gradient (accumulated once per Backward; re-run cleanly).
  for (Param* p : conv.Params()) p->ZeroGrad();
  loss();
  conv.Backward(coeffs);
  Param* weights = conv.Params()[0];
  for (size_t i = 0; i < weights->value.size(); i += 5) {
    const double num = NumericalGrad(loss, &weights->value[i]);
    EXPECT_NEAR(weights->grad[i], num, 1e-6) << "w" << i;
  }
}

TEST(BatchNorm, GradientCheckInput) {
  Rng rng(72);
  BatchNorm1D bn(2);
  Batch input = RandomBatch(3, 2, 5, &rng);
  Batch coeffs = RandomBatch(3, 2, 5, &rng);

  auto loss = [&]() {
    return WeightedSum(bn.Forward(input, /*training=*/true), coeffs);
  };
  loss();
  Batch grad_in = bn.Backward(coeffs);
  for (size_t b = 0; b < 2; ++b) {
    for (size_t t = 0; t < 5; t += 2) {
      const double num = NumericalGrad(loss, &input[b][0][t]);
      EXPECT_NEAR(grad_in[b][0][t], num, 1e-5) << "b=" << b << " t=" << t;
    }
  }
}

TEST(BatchNorm, NormalisesTrainingBatch) {
  Rng rng(73);
  BatchNorm1D bn(1);
  Batch input = RandomBatch(4, 1, 10, &rng);
  for (auto& fm : input) {
    for (double& v : fm[0]) v = v * 3.0 + 7.0;
  }
  const Batch out = bn.Forward(input, true);
  double mean = 0.0;
  size_t count = 0;
  for (const auto& fm : out) {
    for (double v : fm[0]) {
      mean += v;
      ++count;
    }
  }
  mean /= count;
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  Rng rng(74);
  BatchNorm1D bn(1);
  Batch input = RandomBatch(4, 1, 10, &rng);
  for (int i = 0; i < 50; ++i) bn.Forward(input, true);  // converge stats
  const Batch train_out = bn.Forward(input, true);
  const Batch infer_out = bn.Forward(input, false);
  EXPECT_NEAR(train_out[0][0][0], infer_out[0][0][0], 0.2);
}

TEST(ReLULayer, ForwardBackward) {
  ReLU relu;
  Batch input{{{-1.0, 2.0, -3.0, 4.0}}};
  const Batch out = relu.Forward(input);
  EXPECT_DOUBLE_EQ(out[0][0][0], 0.0);
  EXPECT_DOUBLE_EQ(out[0][0][1], 2.0);
  Batch grad{{{1.0, 1.0, 1.0, 1.0}}};
  const Batch gin = relu.Backward(grad);
  EXPECT_DOUBLE_EQ(gin[0][0][0], 0.0);
  EXPECT_DOUBLE_EQ(gin[0][0][1], 1.0);
}

TEST(SqueezeExciteLayer, GradientCheckInput) {
  Rng rng(75);
  SqueezeExcite se(3, 2, &rng);
  Batch input = RandomBatch(2, 3, 4, &rng);
  Batch coeffs = RandomBatch(2, 3, 4, &rng);

  auto loss = [&]() { return WeightedSum(se.Forward(input), coeffs); };
  loss();
  Batch grad_in = se.Backward(coeffs);
  for (size_t c = 0; c < 3; ++c) {
    for (size_t t = 0; t < 4; t += 2) {
      const double num = NumericalGrad(loss, &input[1][c][t]);
      EXPECT_NEAR(grad_in[1][c][t], num, 1e-6);
    }
  }
}

TEST(SqueezeExciteLayer, GatesBoundedAndScaling) {
  Rng rng(76);
  SqueezeExcite se(2, 2, &rng);
  Batch input = RandomBatch(1, 2, 6, &rng);
  const Batch out = se.Forward(input);
  // Output is a channel-wise scaling with gate in (0,1).
  for (size_t t = 0; t < 6; ++t) {
    if (std::abs(input[0][0][t]) > 1e-9) {
      const double gate = out[0][0][t] / input[0][0][t];
      EXPECT_GT(gate, 0.0);
      EXPECT_LT(gate, 1.0);
    }
  }
}

TEST(GlobalAvgPoolLayer, ForwardBackward) {
  GlobalAvgPool gap;
  Batch input{{{2.0, 4.0}, {0.0, 6.0}}};
  const auto out = gap.Forward(input);
  EXPECT_DOUBLE_EQ(out[0][0], 3.0);
  EXPECT_DOUBLE_EQ(out[0][1], 3.0);
  const Batch gin = gap.Backward({{1.0, 2.0}});
  EXPECT_DOUBLE_EQ(gin[0][0][0], 0.5);
  EXPECT_DOUBLE_EQ(gin[0][1][1], 1.0);
}

TEST(DenseLayer, GradientCheck) {
  Rng rng(77);
  Dense dense(4, 3, &rng);
  std::vector<std::vector<double>> input{{0.5, -1.0, 2.0, 0.1}};
  std::vector<std::vector<double>> coeffs{{1.0, -2.0, 0.5}};

  auto loss = [&]() {
    const auto out = dense.Forward(input);
    double sum = 0.0;
    for (size_t i = 0; i < 3; ++i) sum += out[0][i] * coeffs[0][i];
    return sum;
  };
  loss();
  const auto grad_in = dense.Backward(coeffs);
  for (size_t i = 0; i < 4; ++i) {
    const double num = NumericalGrad(loss, &input[0][i]);
    EXPECT_NEAR(grad_in[0][i], num, 1e-6);
  }
  for (Param* p : dense.Params()) p->ZeroGrad();
  loss();
  dense.Backward(coeffs);
  Param* weights = dense.Params()[0];
  for (size_t i = 0; i < weights->value.size(); i += 3) {
    const double num = NumericalGrad(loss, &weights->value[i]);
    EXPECT_NEAR(weights->grad[i], num, 1e-6);
  }
}

TEST(DropoutLayer, InferenceIsIdentity) {
  Rng rng(78);
  Dropout dropout(0.5);
  std::vector<std::vector<double>> input{{1.0, 2.0, 3.0}};
  const auto out = dropout.Forward(input, /*training=*/false, &rng);
  EXPECT_EQ(out, input);
}

TEST(DropoutLayer, TrainingScalesKeptUnits) {
  Rng rng(79);
  Dropout dropout(0.5);
  std::vector<std::vector<double>> input{
      std::vector<double>(1000, 1.0)};
  const auto out = dropout.Forward(input, true, &rng);
  // Kept units are scaled by 1/keep = 2; expectation stays ~1.
  double mean = 0.0;
  for (double v : out[0]) {
    EXPECT_TRUE(v == 0.0 || std::abs(v - 2.0) < 1e-12);
    mean += v;
  }
  EXPECT_NEAR(mean / 1000.0, 1.0, 0.15);
}

TEST(SoftmaxCE, ProbabilitiesAndLoss) {
  const std::vector<std::vector<double>> logits{{1.0, 1.0}, {10.0, 0.0}};
  const auto probs = SoftmaxCrossEntropy::Probabilities(logits);
  EXPECT_NEAR(probs[0][0], 0.5, 1e-12);
  EXPECT_GT(probs[1][0], 0.99);

  std::vector<std::vector<double>> grad;
  const double loss = SoftmaxCrossEntropy::LossAndGrad(logits, {0, 0}, &grad);
  EXPECT_GT(loss, 0.0);
  // Gradient of correct class is negative (pushes logit up).
  EXPECT_LT(grad[0][0], 0.0);
  EXPECT_GT(grad[0][1], 0.0);
}

TEST(SoftmaxCE, GradientCheck) {
  std::vector<std::vector<double>> logits{{0.3, -0.7, 1.2}};
  const std::vector<size_t> targets{2};
  std::vector<std::vector<double>> grad;
  SoftmaxCrossEntropy::LossAndGrad(logits, targets, &grad);
  for (size_t i = 0; i < 3; ++i) {
    auto loss = [&]() {
      std::vector<std::vector<double>> g;
      return SoftmaxCrossEntropy::LossAndGrad(logits, targets, &g);
    };
    const double num = NumericalGrad(loss, &logits[0][i]);
    EXPECT_NEAR(grad[0][i], num, 1e-6);
  }
}

TEST(LstmLayer, GradientCheckInput) {
  Rng rng(80);
  Lstm lstm(3, 4, &rng);
  std::vector<std::vector<std::vector<double>>> input{
      {{0.1, -0.2, 0.3}, {0.4, 0.0, -0.5}, {0.2, 0.2, 0.2}}};
  std::vector<std::vector<double>> coeffs{{1.0, -1.0, 0.5, 2.0}};

  auto loss = [&]() {
    const auto h = lstm.Forward(input);
    double sum = 0.0;
    for (size_t i = 0; i < 4; ++i) sum += h[0][i] * coeffs[0][i];
    return sum;
  };
  loss();
  const auto grad_in = lstm.Backward(coeffs);
  for (size_t s = 0; s < 3; ++s) {
    for (size_t k = 0; k < 3; ++k) {
      const double num = NumericalGrad(loss, &input[0][s][k]);
      EXPECT_NEAR(grad_in[0][s][k], num, 1e-6) << "step " << s << " dim " << k;
    }
  }
}

TEST(LstmLayer, GradientCheckParams) {
  Rng rng(81);
  Lstm lstm(2, 3, &rng);
  std::vector<std::vector<std::vector<double>>> input{
      {{0.5, -0.1}, {-0.3, 0.8}}};
  std::vector<std::vector<double>> coeffs{{0.7, -0.2, 1.1}};

  auto loss = [&]() {
    const auto h = lstm.Forward(input);
    double sum = 0.0;
    for (size_t i = 0; i < 3; ++i) sum += h[0][i] * coeffs[0][i];
    return sum;
  };
  for (Param* p : lstm.Params()) p->ZeroGrad();
  loss();
  lstm.Backward(coeffs);
  for (Param* p : lstm.Params()) {
    for (size_t i = 0; i < p->value.size(); i += 7) {
      const double num = NumericalGrad(loss, &p->value[i]);
      EXPECT_NEAR(p->grad[i], num, 1e-6);
    }
  }
}

TEST(AdamOptimizer, ReducesSimpleQuadratic) {
  // Minimise (x - 3)^2 with Adam; gradient = 2(x - 3).
  Param p(1);
  p.value[0] = 0.0;
  Adam adam(0.1);
  adam.Register({&p});
  for (int i = 0; i < 500; ++i) {
    adam.ZeroGrad();
    p.grad[0] = 2.0 * (p.value[0] - 3.0);
    adam.Step();
  }
  EXPECT_NEAR(p.value[0], 3.0, 0.05);
}

TEST(ParamBlock, GlorotInitWithinLimit) {
  Rng rng(82);
  Param p(100);
  p.GlorotInit(10, 10, &rng);
  const double limit = std::sqrt(6.0 / 20.0);
  for (double v : p.value) {
    EXPECT_LE(std::abs(v), limit + 1e-12);
  }
}

}  // namespace
}  // namespace etsc::nn
