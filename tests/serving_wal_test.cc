// Durability and overload-policy coverage for the serving engine (DESIGN.md
// sec 16): WAL round trips, torn tails, a seeded corruption corpus (in the
// corruption_test.cc style — clean Status, never a crash), tiered shedding,
// malformed-observation guards, the chaos injectors, and the eviction vs.
// dispatch races the TSan matrix drives at ETSC_THREADS=8.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "algos/ects.h"
#include "core/fault.h"
#include "core/rng.h"
#include "core/serving.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

/// Commits with label 1 once it has seen `need` points (same contract as the
/// streaming/serving tests' FixedNeed).
class FixedNeed : public EarlyClassifier {
 public:
  explicit FixedNeed(size_t need) : need_(need) {}
  Status Fit(const Dataset&) override { return Status::OK(); }
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override {
    if (series.length() == 0) {
      return Status::InvalidArgument("empty series");
    }
    return EarlyPrediction{1, std::min(need_, series.length())};
  }
  std::string name() const override { return "fixed"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<FixedNeed>(need_);
  }

 private:
  size_t need_;
};

std::shared_ptr<const EarlyClassifier> FittedEcts(const Dataset& d) {
  auto model = std::make_shared<EctsClassifier>();
  EXPECT_TRUE(model->Fit(d).ok());
  return model;
}

std::string TempWal(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".stale").c_str());
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Simulates a crash partway through a live replay: opens every slot, ingests
/// the first `events` trace entries (dispatching every `dispatch_every`), and
/// abandons the engine — no Finish, no Close, exactly what a killed process
/// leaves behind in the WAL.
void RunPartialTrace(const std::string& wal,
                     std::shared_ptr<const EarlyClassifier> model,
                     size_t num_sessions, const std::vector<IngestEvent>& trace,
                     size_t events, size_t dispatch_every) {
  ServingOptions options;
  options.wal_path = wal;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("ects", model, 1).ok());
  std::vector<SessionId> ids(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    auto id = engine.Open("ects");
    ASSERT_TRUE(id.ok());
    ids[s] = *id;
  }
  size_t since = 0;
  for (size_t e = 0; e < events && e < trace.size(); ++e) {
    ASSERT_TRUE(engine.Ingest(ids[trace[e].session], trace[e].values).ok());
    if (dispatch_every > 0 && ++since >= dispatch_every) {
      since = 0;
      ASSERT_TRUE(engine.DispatchBatch().ok());
    }
  }
}

TEST(ServingWal, RecoveredReplayIsBitIdenticalToUncrashed) {
  Dataset d = testing::MakeToyDataset(10, 20, 0.0, 3, 0.05);
  auto model = FittedEcts(d);
  const size_t kSessions = 9;
  const auto trace = BuildReplayTrace(d, kSessions, 7);
  const auto expected = ReplaySequential(*model, 1, kSessions, trace);

  const std::string wal = TempWal("serving_roundtrip.wal");
  // Crash after ~60% of the traffic, mid-cadence.
  RunPartialTrace(wal, model, kSessions, trace, trace.size() * 3 / 5, 5);

  ServingEngine recovered;
  ASSERT_TRUE(recovered.RegisterModel("ects", model, 1).ok());
  auto rec = recovered.Recover(wal);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->sessions_recovered, kSessions);
  EXPECT_GT(rec->observations_replayed, 0u);
  EXPECT_EQ(rec->torn_rows, 0u);

  auto resumed =
      ResumeReplayThroughEngine(recovered, "ects", kSessions, trace, 5);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->size(), kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ((*resumed)[s], expected[s]) << "session " << s << " diverged";
  }
}

TEST(ServingWal, TornTailIsSkippedAndResumeStaysBitIdentical) {
  Dataset d = testing::MakeToyDataset(8, 16, 0.0, 3, 0.05);
  auto model = FittedEcts(d);
  const size_t kSessions = 5;
  const auto trace = BuildReplayTrace(d, kSessions, 11);
  const auto expected = ReplaySequential(*model, 1, kSessions, trace);

  const std::string wal = TempWal("serving_torn.wal");
  RunPartialTrace(wal, model, kSessions, trace, trace.size() / 2, 7);
  // Tear the last row mid-append, as a crash between write and flush would.
  ASSERT_TRUE(TruncateTail(wal, 9).ok());

  ServingEngine recovered;
  ASSERT_TRUE(recovered.RegisterModel("ects", model, 1).ok());
  auto rec = recovered.Recover(wal);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->torn_rows, 1u);

  // The torn observation was never acknowledged durable; the resume replays
  // it from the trace, so the decision set still matches exactly.
  auto resumed =
      ResumeReplayThroughEngine(recovered, "ects", kSessions, trace, 7);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  for (size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ((*resumed)[s], expected[s]) << "session " << s << " diverged";
  }
}

TEST(ServingWal, CorruptionCorpusYieldsStatusNeverACrash) {
  Dataset d = testing::MakeToyDataset(6, 12, 0.0, 3, 0.05);
  auto model = FittedEcts(d);
  const size_t kSessions = 4;
  const auto trace = BuildReplayTrace(d, kSessions, 3);
  const std::string wal = TempWal("serving_corpus.wal");
  RunPartialTrace(wal, model, kSessions, trace, trace.size() / 2, 6);
  const std::string pristine = ReadFile(wal);
  ASSERT_FALSE(pristine.empty());

  Rng rng(20240809);
  for (int trial = 0; trial < 60; ++trial) {
    std::string bytes = pristine;
    // Half the corpus: a single flipped byte; the other half: a truncation at
    // a random offset (torn tails included).
    if (trial % 2 == 0) {
      const size_t at = rng.Index(bytes.size());
      bytes[at] = static_cast<char>(bytes[at] ^ (1 << rng.Index(8)));
    } else {
      bytes.resize(rng.Index(bytes.size()));
    }
    const std::string corrupt = TempWal("serving_corpus_trial.wal");
    {
      std::ofstream out(corrupt, std::ios::binary);
      out << bytes;
    }
    ServingEngine engine;
    ASSERT_TRUE(engine.RegisterModel("ects", model, 1).ok());
    auto rec = engine.Recover(corrupt);
    if (!rec.ok()) {
      // Clean refusal is an acceptable outcome; a crash or a hang is not.
      EXPECT_FALSE(rec.status().message().empty());
      continue;
    }
    // A recovery that passed row validation must also dispatch cleanly.
    EXPECT_LE(rec->sessions_recovered, kSessions);
  }
}

TEST(ServingWal, RecoverNeedsTheModelsRegistered) {
  Dataset d = testing::MakeToyDataset(5, 10, 0.0, 2, 0.05);
  auto model = FittedEcts(d);
  const auto trace = BuildReplayTrace(d, 2, 5);
  const std::string wal = TempWal("serving_nomodel.wal");
  RunPartialTrace(wal, model, 2, trace, trace.size() / 2, 0);

  ServingEngine empty;
  auto rec = empty.Recover(wal);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServingWal, RecoverRefusesANonQuiescentEngine) {
  const std::string wal = TempWal("serving_nonfresh.wal");
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1).ok());
  ASSERT_TRUE(engine.Open("m").ok());
  auto rec = engine.Recover(wal);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServingWal, NewerFormatVersionIsRefusedWithUpgradeHint) {
  const std::string wal = TempWal("serving_newer.wal");
  {
    std::ofstream out(wal, std::ios::binary);
    out << "# etscwal v2\nO,1,m,#end\n";
  }
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1).ok());
  auto rec = engine.Recover(wal);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rec.status().message().find("upgrade"), std::string::npos);
}

TEST(ServingWal, MalformedSentineledRowIsDataLossNamingTheLine) {
  const std::string wal = TempWal("serving_malformed.wal");
  {
    std::ofstream out(wal, std::ios::binary);
    out << "# etscwal v1\nO,1,m,#end\nI,1,not-a-number,#end\n";
  }
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1).ok());
  auto rec = engine.Recover(wal);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(rec.status().message().find(":3"), std::string::npos);
}

TEST(ServingWal, ForeignFileRotatesToStaleBeforeJournaling) {
  const std::string wal = TempWal("serving_foreign.wal");
  {
    std::ofstream out(wal, std::ios::binary);
    out << "some other tool's file\n";
  }
  ServingOptions options;
  options.wal_path = wal;
  ServingEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1).ok());
  ASSERT_TRUE(engine.Open("m").ok());
  const std::string stale = ReadFile(wal + ".stale");
  EXPECT_NE(stale.find("some other tool's file"), std::string::npos);
  const std::string fresh = ReadFile(wal);
  EXPECT_EQ(fresh.rfind("# etscwal v1\n", 0), 0u);
  EXPECT_NE(fresh.find("O,1,m,#end"), std::string::npos);
}

TEST(ServingWal, FinishCloseAndEvictionsReplay) {
  Dataset d = testing::MakeToyDataset(5, 10, 0.0, 2, 0.05);
  auto model = FittedEcts(d);
  const std::string wal = TempWal("serving_lifecycle.wal");

  SessionId finished_id = 0;
  SessionId closed_id = 0;
  SessionId live_id = 0;
  std::optional<EarlyPrediction> finished_decision;
  {
    ServingOptions options;
    options.wal_path = wal;
    ServingEngine engine(options);
    ASSERT_TRUE(engine.RegisterModel("ects", model, 1).ok());
    auto a = engine.Open("ects");
    auto b = engine.Open("ects");
    auto c = engine.Open("ects");
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    finished_id = *a;
    closed_id = *b;
    live_id = *c;
    const TimeSeries& series = d.instance(0);
    for (size_t t = 0; t < 4; ++t) {
      ASSERT_TRUE(engine.Ingest(finished_id, {series.at(0, t)}).ok());
      ASSERT_TRUE(engine.Ingest(live_id, {series.at(0, t)}).ok());
    }
    auto fin = engine.Finish(finished_id);
    ASSERT_TRUE(fin.ok());
    finished_decision = *fin;
    ASSERT_TRUE(engine.Close(closed_id).ok());
    EXPECT_GT(engine.stats().wal_appends, 0u);
  }

  ServingEngine recovered;
  ASSERT_TRUE(recovered.RegisterModel("ects", model, 1).ok());
  auto rec = recovered.Recover(wal);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->sessions_recovered, 2u);
  EXPECT_EQ(rec->sessions_removed, 1u);
  EXPECT_EQ(rec->finishes_replayed, 1u);

  EXPECT_EQ(recovered.Info(closed_id).status().code(), StatusCode::kNotFound);
  auto live = recovered.Info(live_id);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->ingested, 4u);
  auto fin = recovered.Info(finished_id);
  ASSERT_TRUE(fin.ok());
  ASSERT_TRUE(fin->decision.has_value());
  ASSERT_TRUE(finished_decision.has_value());
  EXPECT_EQ(fin->decision->label, finished_decision->label);
  EXPECT_EQ(fin->decision->prefix_length, finished_decision->prefix_length);
}

TEST(ServingWal, MissingFileIsACleanEmptyRecoveryThatArmsTheJournal) {
  const std::string wal = TempWal("serving_missing.wal");
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1).ok());
  auto rec = engine.Recover(wal);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->sessions_recovered, 0u);
  // Post-recovery activity journals to the same (new) file.
  ASSERT_TRUE(engine.Open("m").ok());
  const std::string contents = ReadFile(wal);
  EXPECT_EQ(contents.rfind("# etscwal v1\n", 0), 0u);
  EXPECT_NE(contents.find("O,1,m,#end"), std::string::npos);
}

TEST(ServingWal, DisabledByDefaultAndModelNamesMustBeWalSafe) {
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1).ok());
  EXPECT_EQ(engine
                .RegisterModel("bad,name", std::make_shared<FixedNeed>(2), 1)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine
                .RegisterModel("bad\nname", std::make_shared<FixedNeed>(2), 1)
                .code(),
            StatusCode::kInvalidArgument);
  auto id = engine.Open("m");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Ingest(*id, {1.0}).ok());
  EXPECT_EQ(engine.stats().wal_appends, 0u);
}

TEST(ServingWal, IngestedCountTracksLifetimeAcceptedObservations) {
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1).ok());
  auto id = engine.Open("m");
  ASSERT_TRUE(id.ok());
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(engine.Ingest(*id, {static_cast<double>(t)}).ok());
  }
  ASSERT_TRUE(engine.DispatchBatch().ok());
  // Post-decision (sticky) pushes do not advance `observed`, but every
  // accepted observation counts toward `ingested` — the WAL resume offset.
  ASSERT_TRUE(engine.Ingest(*id, {9.0}).ok());
  auto info = engine.Info(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->ingested, 6u);
  EXPECT_TRUE(info->decision.has_value());
}

TEST(ServingShed, SoftWatermarkShedsDecidedSessionsBeforeAdmitting) {
  ServingOptions options;
  options.max_sessions = 4;
  options.soft_watermark = 0.5;  // shed once the table holds 2
  ServingEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(1), 1).ok());
  auto decided = engine.Open("m");
  ASSERT_TRUE(decided.ok());
  ASSERT_TRUE(engine.Ingest(*decided, {1.0}).ok());
  ASSERT_TRUE(engine.Ingest(*decided, {2.0}).ok());
  ASSERT_TRUE(engine.DispatchBatch().ok());
  ASSERT_TRUE(engine.Open("m").ok());
  // Table now at the soft limit (2 of 4): this admission sheds the decided
  // session on its way in.
  ASSERT_TRUE(engine.Open("m").ok());
  EXPECT_EQ(engine.Info(*decided).status().code(), StatusCode::kNotFound);
  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.shed_decided, 1u);
  EXPECT_EQ(stats.live_sessions, 2u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ServingShed, HardRefusalCarriesAMachineReadableRetryHint) {
  ServingOptions options;
  options.max_sessions = 1;
  options.retry_after_ms = 250.0;
  ServingEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(5), 1).ok());
  ASSERT_TRUE(engine.Open("m").ok());
  auto refused = engine.Open("m");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  const auto retry = RetryAfterMs(refused.status());
  ASSERT_TRUE(retry.has_value());
  EXPECT_DOUBLE_EQ(*retry, 250.0);
  EXPECT_EQ(engine.stats().shed_refusals, 1u);
  // An OK status carries no hint.
  EXPECT_FALSE(RetryAfterMs(Status::OK()).has_value());
}

TEST(ServingShed, OldestIdleUndecidedSessionShedsWhenConfigured) {
  ServingOptions options;
  options.max_sessions = 2;
  options.shed_min_idle_seconds = 0.01;
  ServingEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(100), 1).ok());
  auto idle = engine.Open("m");
  ASSERT_TRUE(idle.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto fresh = engine.Open("m");
  ASSERT_TRUE(fresh.ok());
  // Full table, nothing decided: the hard tier sheds the oldest idle session
  // (well past the 10ms threshold) instead of refusing.
  auto admitted = engine.Open("m");
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_EQ(engine.Info(*idle).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(engine.Info(*fresh).ok());
  EXPECT_EQ(engine.stats().shed_idle, 1u);
  EXPECT_EQ(engine.stats().rejected, 0u);
}

TEST(ServingShed, UndecidedSessionsAreNeverShedByDefault) {
  // The default policy (shed_min_idle_seconds = inf) must preserve the
  // original hard-admission contract: live undecided work is never dropped.
  ServingOptions options;
  options.max_sessions = 2;
  ServingEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(100), 1).ok());
  ASSERT_TRUE(engine.Open("m").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(engine.Open("m").ok());
  auto third = engine.Open("m");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.stats().live_sessions, 2u);
}

TEST(ServingShed, EnvKnobsRouteThroughTheValidatedParser) {
  ServingOptions defaults;
  setenv("ETSC_SERVE_SOFT_WATERMARK", "0.5", 1);
  setenv("ETSC_SERVE_SHED_IDLE_MS", "1500", 1);
  setenv("ETSC_SERVE_RETRY_MS", "50", 1);
  setenv("ETSC_SERVE_WATCHDOG_GRACE", "2", 1);
  setenv("ETSC_SERVE_WAL", "/tmp/knob.wal", 1);
  ServingOptions parsed = ServingOptions::FromEnv();
  EXPECT_DOUBLE_EQ(parsed.soft_watermark, 0.5);
  EXPECT_DOUBLE_EQ(parsed.shed_min_idle_seconds, 1.5);
  EXPECT_DOUBLE_EQ(parsed.retry_after_ms, 50.0);
  EXPECT_DOUBLE_EQ(parsed.watchdog_grace, 2.0);
  EXPECT_EQ(parsed.wal_path, "/tmp/knob.wal");
  // Garbage and out-of-range values warn and keep the defaults.
  setenv("ETSC_SERVE_SOFT_WATERMARK", "1.5", 1);
  setenv("ETSC_SERVE_SHED_IDLE_MS", "soon", 1);
  setenv("ETSC_SERVE_RETRY_MS", "-3", 1);
  setenv("ETSC_SERVE_WATCHDOG_GRACE", "2x", 1);
  setenv("ETSC_SERVE_WAL", "", 1);
  ServingOptions garbage = ServingOptions::FromEnv();
  EXPECT_DOUBLE_EQ(garbage.soft_watermark, defaults.soft_watermark);
  EXPECT_EQ(garbage.shed_min_idle_seconds, defaults.shed_min_idle_seconds);
  EXPECT_DOUBLE_EQ(garbage.retry_after_ms, defaults.retry_after_ms);
  EXPECT_DOUBLE_EQ(garbage.watchdog_grace, defaults.watchdog_grace);
  EXPECT_EQ(garbage.wal_path, defaults.wal_path);
  unsetenv("ETSC_SERVE_SOFT_WATERMARK");
  unsetenv("ETSC_SERVE_SHED_IDLE_MS");
  unsetenv("ETSC_SERVE_RETRY_MS");
  unsetenv("ETSC_SERVE_WATCHDOG_GRACE");
  unsetenv("ETSC_SERVE_WAL");
}

TEST(ServingIngestGuard, NonFiniteObservationsAreRejectedCleanly) {
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1).ok());
  auto id = engine.Open("m");
  ASSERT_TRUE(id.ok());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(engine.Ingest(*id, {nan}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Ingest(*id, {inf}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Ingest(*id, {-inf}).code(), StatusCode::kInvalidArgument);
  // The rejected observations never reached the queue or the model.
  auto info = engine.Info(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->pending, 0u);
  EXPECT_EQ(info->ingested, 0u);
  EXPECT_EQ(engine.stats().ingest_rejected, 3u);
  // The session is not poisoned: clean traffic still decides.
  ASSERT_TRUE(engine.Ingest(*id, {1.0}).ok());
  ASSERT_TRUE(engine.Ingest(*id, {2.0}).ok());
  ASSERT_TRUE(engine.Ingest(*id, {3.0}).ok());
  ASSERT_TRUE(engine.DispatchBatch().ok());
  auto after = engine.Info(*id);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->decision.has_value());
}

TEST(ServingIngestGuard, MultivariateNaNIsCaughtInAnyChannel) {
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 3).ok());
  auto id = engine.Open("m");
  ASSERT_TRUE(id.ok());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(engine.Ingest(*id, {1.0, nan, 3.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine.Ingest(*id, {1.0, 2.0, 3.0}).ok());
}

TEST(ServingFaultDeathTest, DieAtIngestExitsWithTheFaultCode) {
  EXPECT_EXIT(
      {
        ArmServeFault(ServeFaultPoint::kIngest, 2);
        ServingEngine engine;
        (void)engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1);
        auto id = engine.Open("m");
        (void)engine.Ingest(*id, {1.0});
        (void)engine.Ingest(*id, {2.0});  // the armed ordinal — never returns
      },
      ::testing::ExitedWithCode(kDieAtExitCode), "die-at fault");
}

TEST(ServingFaultDeathTest, DieAtDispatchExitsWithTheFaultCode) {
  EXPECT_EXIT(
      {
        ArmServeFault(ServeFaultPoint::kDispatch, 1);
        ServingEngine engine;
        (void)engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1);
        auto id = engine.Open("m");
        (void)engine.Ingest(*id, {1.0});
        (void)engine.DispatchBatch();  // mid-dispatch — never returns
      },
      ::testing::ExitedWithCode(kDieAtExitCode), "die-at fault");
}

TEST(ServingFaultDeathTest, ArmServeFaultFromEnvParsesTheDrillSpec) {
  EXPECT_EXIT(
      {
        setenv("ETSC_SERVE_FAULT", "die-at-ingest:1", 1);
        ArmServeFaultFromEnv();
        ServingEngine engine;
        (void)engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1);
        auto id = engine.Open("m");
        (void)engine.Ingest(*id, {1.0});
      },
      ::testing::ExitedWithCode(kDieAtExitCode), "die-at fault");
}

TEST(ServingFault, GarbageFaultSpecDisarms) {
  setenv("ETSC_SERVE_FAULT", "die-at-lunch:banana", 1);
  ArmServeFaultFromEnv();
  unsetenv("ETSC_SERVE_FAULT");
  ServingEngine engine;
  ASSERT_TRUE(
      engine.RegisterModel("m", std::make_shared<FixedNeed>(2), 1).ok());
  auto id = engine.Open("m");
  ASSERT_TRUE(id.ok());
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(engine.Ingest(*id, {static_cast<double>(t)}).ok());
  }
  ASSERT_TRUE(engine.DispatchBatch().ok());  // still alive: disarmed
}

TEST(ServingFault, HangingModelIsCancelledByTheWatchdog) {
  HangOptions hang;
  hang.hang_predict = true;
  hang.max_seconds = 10.0;  // safety valve if the watchdog is broken
  auto hanging = std::make_shared<HangingClassifier>(
      std::make_unique<FixedNeed>(1), hang);
  ServingOptions options;
  options.session_budget_seconds = 0.05;
  options.watchdog_grace = 2.0;  // cancel at ~0.1s
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("hang", hanging, 1).ok());
  auto id = engine.Open("hang");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Ingest(*id, {1.0}).ok());
  ASSERT_TRUE(engine.DispatchBatch().ok());
  // The hung predict was cooperatively cancelled; the session carries the
  // budget-overrun error instead of wedging the pool forever.
  auto info = engine.Info(*id);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ServingRace, EvictionSkipsClaimedSessionsUnderConcurrentDispatch) {
  // The TSan build of this test is the race proof: eviction sweeps run
  // against live ingest and dispatch, and claimed (in_flight) sessions must
  // be skipped, not torn down mid-replay.
  Dataset d = testing::MakeToyDataset(8, 16, 0.0, 3, 0.05);
  auto model = FittedEcts(d);
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterModel("ects", model, 1).ok());

  constexpr size_t kWriters = 4;
  constexpr size_t kSessionsPerWriter = 6;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t s = 0; s < kSessionsPerWriter; ++s) {
        auto id = engine.Open("ects");
        if (!id.ok()) continue;  // a racing shed pass may refuse
        const TimeSeries& instance = d.instance((w + s) % d.size());
        for (size_t t = 0; t < instance.length(); ++t) {
          const Status status = engine.Ingest(*id, {instance.at(0, t)});
          if (status.code() == StatusCode::kNotFound) break;  // evicted: fine
          ASSERT_TRUE(status.ok());
        }
      }
    });
  }
  std::thread dispatcher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(engine.DispatchBatch().ok());
      std::this_thread::yield();
    }
  });
  std::thread evictor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      engine.EvictDecided();
      engine.EvictIdle(0.0);
      std::this_thread::yield();
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  dispatcher.join();
  evictor.join();
  ASSERT_TRUE(engine.DispatchBatch().ok());
  const ServingStats stats = engine.stats();
  // Conservation law: every opened session is accounted for exactly once.
  EXPECT_EQ(stats.live_sessions + stats.evicted + stats.closed, stats.opened);
  EXPECT_EQ(stats.opened, kWriters * kSessionsPerWriter);
}

TEST(ServingRace, WalJournalingStaysConsistentUnderConcurrency) {
  // Same race, with the journal on: every accepted event lands in the WAL,
  // and a post-hoc recovery of the file parses cleanly end to end.
  Dataset d = testing::MakeToyDataset(6, 12, 0.0, 2, 0.05);
  auto model = FittedEcts(d);
  const std::string wal = TempWal("serving_race.wal");
  {
    ServingOptions options;
    options.wal_path = wal;
    ServingEngine engine(options);
    ASSERT_TRUE(engine.RegisterModel("ects", model, 1).ok());
    std::vector<std::thread> writers;
    for (size_t w = 0; w < 3; ++w) {
      writers.emplace_back([&, w] {
        for (size_t s = 0; s < 4; ++s) {
          auto id = engine.Open("ects");
          ASSERT_TRUE(id.ok());
          const TimeSeries& instance = d.instance((w + s) % d.size());
          for (size_t t = 0; t < instance.length(); ++t) {
            ASSERT_TRUE(engine.Ingest(*id, {instance.at(0, t)}).ok());
          }
        }
      });
    }
    std::thread dispatcher([&] {
      for (int round = 0; round < 20; ++round) {
        ASSERT_TRUE(engine.DispatchBatch().ok());
        std::this_thread::yield();
      }
    });
    for (auto& t : writers) t.join();
    dispatcher.join();
  }
  ServingEngine recovered;
  ASSERT_TRUE(recovered.RegisterModel("ects", model, 1).ok());
  auto rec = recovered.Recover(wal);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->sessions_recovered, 12u);
  EXPECT_EQ(rec->observations_replayed, 12u * 12u);
  EXPECT_EQ(rec->torn_rows, 0u);
}

}  // namespace
}  // namespace etsc
