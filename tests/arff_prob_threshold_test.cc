// Tests for the ARFF loader (paper Sec. 5.5) and the probability-threshold
// baseline classifier.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algos/prob_threshold.h"
#include "core/arff.h"
#include "tests/test_util.h"
#include "tsc/minirocket.h"

namespace etsc {
namespace {

constexpr char kArff[] = R"(% comment line
@relation test
@attribute att0 numeric
@attribute att1 numeric
@attribute att2 numeric
@attribute target {cat,dog}
@data
1.0,2.0,3.0,cat
4.0,5.0,6.0,dog
7.5,?,9.5,cat
)";

TEST(Arff, ParsesNominalClasses) {
  auto result = ParseArff(kArff);
  ASSERT_TRUE(result.ok());
  const Dataset& d = *result;
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d.NumVariables(), 1u);
  EXPECT_EQ(d.MaxLength(), 3u);
  EXPECT_EQ(d.label(0), 0);  // cat
  EXPECT_EQ(d.label(1), 1);  // dog
  EXPECT_DOUBLE_EQ(d.instance(1).at(0, 2), 6.0);
}

TEST(Arff, MissingValuesAsNaN) {
  auto result = ParseArff(kArff);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isnan(result->instance(2).at(0, 1)));
}

TEST(Arff, NumericIntegerClassKeepsValue) {
  auto result = ParseArff(
      "@relation r\n@attribute a numeric\n@attribute b numeric\n"
      "@attribute target numeric\n@data\n1,2,7\n3,4,-1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->label(0), 7);
  EXPECT_EQ(result->label(1), -1);
}

TEST(Arff, StringClassMappedByAppearance) {
  auto result = ParseArff(
      "@relation r\n@attribute a numeric\n@attribute b numeric\n"
      "@attribute target string\n@data\n1,2,zz\n3,4,aa\n5,6,zz\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->label(0), 0);  // zz first seen
  EXPECT_EQ(result->label(1), 1);  // aa second
  EXPECT_EQ(result->label(2), 0);
}

TEST(Arff, QuotedAttributeNamesAndValues) {
  auto result = ParseArff(
      "@relation r\n@attribute 'att 0' numeric\n"
      "@attribute 'class' {'a b','c'}\n@data\n1.5,'a b'\n2.5,'c'\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->label(0), 0);
  EXPECT_EQ(result->label(1), 1);
}

TEST(Arff, RejectsFieldCountMismatch) {
  auto result = ParseArff(
      "@relation r\n@attribute a numeric\n@attribute t {x}\n@data\n1,2,x\n");
  EXPECT_FALSE(result.ok());
}

TEST(Arff, RejectsUnknownNominalValue) {
  auto result = ParseArff(
      "@relation r\n@attribute a numeric\n@attribute t {x,y}\n@data\n1,z\n");
  EXPECT_FALSE(result.ok());
}

TEST(Arff, RejectsMissingDataSection) {
  EXPECT_FALSE(ParseArff("@relation r\n@attribute a numeric\n").ok());
}

TEST(Arff, RejectsSparseRows) {
  auto result = ParseArff(
      "@relation r\n@attribute a numeric\n@attribute t {x}\n@data\n{0 1},x\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotImplemented);
}

TEST(Arff, LoadMissingFileFails) {
  EXPECT_FALSE(LoadArff("/no/such/file.arff").ok());
}

TEST(Arff, CaseInsensitiveKeywords) {
  auto result = ParseArff(
      "@RELATION r\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE t {x}\n@DATA\n1,x\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

MiniRocketOptions LogisticHead() {
  // Ridge margins are uncalibrated; the threshold rule needs the logistic
  // head's probabilities.
  MiniRocketOptions options;
  options.logistic_above_samples = 0;
  return options;
}

TEST(ProbThreshold, LearnsAndStopsEarly) {
  Dataset d = testing::MakeToyDataset(20, 40, 0.0, 3, 0.05);
  ProbThresholdClassifier model(
      std::make_unique<MiniRocketClassifier>(LogisticHead()));
  ASSERT_TRUE(model.Fit(d).ok());
  double earliness = 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    auto pred = model.PredictEarly(d.instance(i));
    ASSERT_TRUE(pred.ok());
    earliness += static_cast<double>(pred->prefix_length) / 40.0;
    if (pred->label == d.label(i)) ++correct;
  }
  EXPECT_GE(static_cast<double>(correct) / d.size(), 0.9);
  EXPECT_LT(earliness / d.size(), 0.8);
}

TEST(ProbThreshold, HigherThresholdIsMoreCautious) {
  Dataset d = testing::MakeToyDataset(20, 40, 0.3, 3, 0.2);
  ProbThresholdOptions eager;
  eager.threshold = 0.55;
  ProbThresholdOptions cautious;
  cautious.threshold = 0.99;
  ProbThresholdClassifier a(
      std::make_unique<MiniRocketClassifier>(LogisticHead()), eager);
  ProbThresholdClassifier b(
      std::make_unique<MiniRocketClassifier>(LogisticHead()), cautious);
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  double eager_prefix = 0, cautious_prefix = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    eager_prefix += static_cast<double>(a.PredictEarly(d.instance(i))->prefix_length);
    cautious_prefix +=
        static_cast<double>(b.PredictEarly(d.instance(i))->prefix_length);
  }
  EXPECT_LE(eager_prefix, cautious_prefix);
}

TEST(ProbThreshold, PrefixGridEndsAtFullLength) {
  Dataset d = testing::MakeToyDataset(10, 30);
  ProbThresholdClassifier model(std::make_unique<MiniRocketClassifier>());
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_EQ(model.prefix_lengths().back(), 30u);
}

TEST(ProbThreshold, BudgetExhaustionReported) {
  Dataset d = testing::MakeToyDataset(15, 30);
  ProbThresholdClassifier model(std::make_unique<MiniRocketClassifier>());
  model.set_train_budget_seconds(0.0);
  EXPECT_EQ(model.Fit(d).code(), StatusCode::kDeadlineExceeded);
}

TEST(ProbThreshold, PredictBeforeFitFails) {
  ProbThresholdClassifier model(std::make_unique<MiniRocketClassifier>());
  EXPECT_FALSE(model.PredictEarly(TimeSeries::Univariate({1.0})).ok());
}

TEST(ProbThreshold, MultivariateSupportFollowsBase) {
  ProbThresholdClassifier model(std::make_unique<MiniRocketClassifier>());
  EXPECT_TRUE(model.SupportsMultivariate());
  Dataset mv = testing::MakeToyMultivariate(10, 16);
  ASSERT_TRUE(model.Fit(mv).ok());
  EXPECT_TRUE(model.PredictEarly(mv.instance(0)).ok());
}

TEST(ProbThreshold, ArffToClassifierEndToEnd) {
  // The paper's ingestion path: ARFF file -> framework dataset -> algorithm.
  std::string arff = "@relation toy\n";
  Dataset toy = testing::MakeToyDataset(10, 12);
  for (size_t t = 0; t < 12; ++t) {
    arff += "@attribute att" + std::to_string(t) + " numeric\n";
  }
  arff += "@attribute target {0,1}\n@data\n";
  for (size_t i = 0; i < toy.size(); ++i) {
    for (size_t t = 0; t < 12; ++t) {
      arff += std::to_string(toy.instance(i).at(0, t)) + ",";
    }
    arff += std::to_string(toy.label(i)) + "\n";
  }
  auto loaded = ParseArff(arff);
  ASSERT_TRUE(loaded.ok());
  ProbThresholdClassifier model(std::make_unique<MiniRocketClassifier>());
  ASSERT_TRUE(model.Fit(*loaded).ok());
  EXPECT_GE(testing::EarlyAccuracy(model, *loaded), 0.9);
}

}  // namespace
}  // namespace etsc
