#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace etsc {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformWithinRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(7), 7u);
  }
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(7);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 500; ++i) seen[rng.Index(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, IntInclusiveBounds) {
  Rng rng(8);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Int(-1, 1);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 1);
    hit_lo |= v == -1;
    hit_hi |= v == 1;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0, ss = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, BernoulliRate) {
  Rng rng(10);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(12);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SplitSeedIsPureAndSpreadsAcrossIndices) {
  EXPECT_EQ(SplitSeed(42, 0), SplitSeed(42, 0));
  // Nearby (seed, index) pairs land on distinct stream seeds.
  std::vector<uint64_t> seen;
  for (uint64_t seed : {0ull, 1ull, 42ull}) {
    for (uint64_t index = 0; index < 16; ++index) {
      seen.push_back(SplitSeed(seed, index));
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(Rng, SplitIsIndependentOfParentDrawsAndSplitOrder) {
  // Unlike Fork, Split must not read or advance the parent's state: a
  // parallel task can derive its stream before or after any other draw.
  Rng advanced(99), fresh(99);
  (void)advanced.Uniform();
  Rng child_a = advanced.Split(3);
  Rng child_b = fresh.Split(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child_a.Uniform(), child_b.Uniform());
  }

  Rng first(7), second(7);
  Rng f5 = first.Split(5);
  Rng f1 = first.Split(1);
  Rng s1 = second.Split(1);
  Rng s5 = second.Split(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(f5.Uniform(), s5.Uniform());
    EXPECT_DOUBLE_EQ(f1.Uniform(), s1.Uniform());
  }
}

TEST(Rng, ForkIsIndependent) {
  Rng parent1(13), parent2(13);
  Rng child1 = parent1.Fork();
  // Draw from parent2's child the same way: same seed -> same child stream.
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child1.Uniform(), child2.Uniform());
  }
  // And the parents continue identically after forking.
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(parent1.Uniform(), parent2.Uniform());
  }
}

}  // namespace
}  // namespace etsc
