#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace etsc {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformWithinRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(7), 7u);
  }
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(7);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 500; ++i) seen[rng.Index(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, IntInclusiveBounds) {
  Rng rng(8);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Int(-1, 1);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 1);
    hit_lo |= v == -1;
    hit_hi |= v == 1;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0, ss = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, BernoulliRate) {
  Rng rng(10);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(12);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ForkIsIndependent) {
  Rng parent1(13), parent2(13);
  Rng child1 = parent1.Fork();
  // Draw from parent2's child the same way: same seed -> same child stream.
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child1.Uniform(), child2.Uniform());
  }
  // And the parents continue identically after forking.
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(parent1.Uniform(), parent2.Uniform());
  }
}

}  // namespace
}  // namespace etsc
