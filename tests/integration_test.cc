// Cross-module integration tests: the full pipeline the paper's framework
// runs — generated domain datasets, registry-created algorithms, voting,
// stratified CV, metrics — exercised end-to-end.

#include <gtest/gtest.h>

#include "algos/registrations.h"
#include "core/csv.h"
#include "core/evaluation.h"
#include "core/registry.h"
#include "data/biological_sim.h"
#include "data/maritime_sim.h"
#include "data/repository.h"

namespace etsc {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterBuiltinClassifiers(); }
};

TEST_F(IntegrationTest, EctsOnBiologicalBeatsPrior) {
  BiologicalSimOptions sim;
  sim.num_simulations = 150;
  const Dataset bio = MakeBiologicalDataset(sim);
  auto model = ClassifierRegistry::Global().Create("ects");
  ASSERT_TRUE(model.ok());
  EvaluationOptions options;
  options.num_folds = 3;
  const EvaluationResult result = CrossValidate(bio, **model, options);
  ASSERT_TRUE(result.trained());
  // Majority prior is 0.8; a real model must beat it and be early.
  EXPECT_GT(result.MeanScores().accuracy, 0.8);
  EXPECT_LT(result.MeanScores().earliness, 1.0);
}

TEST_F(IntegrationTest, StrutMiniOnMaritime) {
  MaritimeSimOptions sim;
  sim.num_windows = 400;
  const Dataset sea = MakeMaritimeDataset(sim);
  auto model = ClassifierRegistry::Global().Create("s-mini");
  ASSERT_TRUE(model.ok());
  EvaluationOptions options;
  options.num_folds = 3;
  const EvaluationResult result = CrossValidate(sea, **model, options);
  ASSERT_TRUE(result.trained());
  EXPECT_GT(result.MeanScores().accuracy, 0.81);  // prior = 0.808
  EXPECT_GT(result.MeanScores().f1, 0.5);
}

TEST_F(IntegrationTest, VotingKicksInForUnivariateAlgorithmsOnMaritime) {
  MaritimeSimOptions sim;
  sim.num_windows = 200;
  const Dataset sea = MakeMaritimeDataset(sim);
  auto model = ClassifierRegistry::Global().Create("ects");
  ASSERT_TRUE(model.ok());
  EvaluationOptions options;
  options.num_folds = 2;
  const EvaluationResult result = CrossValidate(sea, **model, options);
  // ECTS cannot natively consume 7 variables; trained() proves the harness
  // wrapped it with the per-variable voter.
  EXPECT_TRUE(result.trained());
}

TEST_F(IntegrationTest, CsvRoundTripOfGeneratedDomainData) {
  BiologicalSimOptions sim;
  sim.num_simulations = 40;
  const Dataset bio = MakeBiologicalDataset(sim);
  auto reparsed = ParseCsv(ToCsv(bio), bio.NumVariables(), "bio-rt");
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), bio.size());
  for (size_t i = 0; i < bio.size(); ++i) {
    EXPECT_EQ(reparsed->label(i), bio.label(i));
    EXPECT_EQ(reparsed->instance(i).num_variables(), 3u);
  }
}

TEST_F(IntegrationTest, TrainBudgetPropagatesThroughVotingAndCv) {
  MaritimeSimOptions sim;
  sim.num_windows = 300;
  const Dataset sea = MakeMaritimeDataset(sim);
  auto model = ClassifierRegistry::Global().Create("edsc");
  ASSERT_TRUE(model.ok());
  EvaluationOptions options;
  options.num_folds = 2;
  options.train_budget_seconds = 0.0;  // nothing can train in zero seconds
  const EvaluationResult result = CrossValidate(sea, **model, options);
  EXPECT_FALSE(result.trained());
  ASSERT_FALSE(result.folds.empty());
  EXPECT_NE(result.folds[0].failure.find("DeadlineExceeded"),
            std::string::npos);
  // skip_folds_after_failure stops after the first fold.
  EXPECT_EQ(result.folds.size(), 1u);
}

TEST_F(IntegrationTest, RepositoryToEvaluationPipeline) {
  RepositoryOptions repo;
  repo.height_scale = 0.05;
  repo.maritime_windows = 300;
  auto benchmark = MakeBenchmarkDataset("BasicMotions", repo);
  ASSERT_TRUE(benchmark.ok());
  auto model = ClassifierRegistry::Global().Create("s-mini");
  ASSERT_TRUE(model.ok());
  EvaluationOptions options;
  options.num_folds = 3;
  const EvaluationResult result =
      CrossValidate(benchmark->data, **model, options);
  ASSERT_TRUE(result.trained());
  // 4 balanced classes: prior accuracy is 0.25.
  EXPECT_GT(result.MeanScores().accuracy, 0.5);
}

TEST_F(IntegrationTest, AllRegisteredAlgorithmsSurviveTinyDataset) {
  // A stress corner: 8 instances, 2 classes, short series. No algorithm may
  // crash; failing with a clean Status is acceptable.
  Dataset tiny("tiny", {}, {});
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    std::vector<double> v(10);
    for (double& x : v) x = rng.Gaussian(i % 2 == 0 ? 0.0 : 3.0, 0.3);
    tiny.Add(TimeSeries::Univariate(std::move(v)), i % 2);
  }
  for (const auto& name : ClassifierRegistry::Global().Names()) {
    auto model = ClassifierRegistry::Global().Create(name);
    ASSERT_TRUE(model.ok());
    const Status status = (*model)->Fit(tiny);
    if (!status.ok()) continue;  // clean refusal is fine
    auto pred = (*model)->PredictEarly(tiny.instance(0));
    EXPECT_TRUE(pred.ok() || !pred.status().message().empty()) << name;
  }
}

}  // namespace
}  // namespace etsc
