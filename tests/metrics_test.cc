#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace etsc {
namespace {

TEST(ConfusionMatrix, AccuracyMatchesDefinition) {
  // Sec 2.2: accuracy = (TP + TN) / all.
  ConfusionMatrix cm({1, 1, 0, 0}, {1, 0, 0, 0});
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.75);
}

TEST(ConfusionMatrix, EmptyIsZero) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 0.0);
}

TEST(ConfusionMatrix, PerfectPrediction) {
  ConfusionMatrix cm({0, 1, 2}, {0, 1, 2});
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 1.0);
}

TEST(ConfusionMatrix, F1HalfSumForm) {
  // One class: TP=1, FP=1, FN=1 => F1 = 1 / (1 + 0.5*(1+1)) = 0.5.
  ConfusionMatrix cm;
  cm.Add(1, 1);   // TP for class 1
  cm.Add(0, 1);   // FP for class 1 / FN for class 0
  cm.Add(1, 0);   // FN for class 1 / FP for class 0
  EXPECT_DOUBLE_EQ(cm.F1(1), 0.5);
}

TEST(ConfusionMatrix, MacroF1AveragesOverTruthClasses) {
  // Class 0 predicted perfectly, class 1 never predicted.
  ConfusionMatrix cm({0, 0, 1}, {0, 0, 0});
  const double f1_class0 = 2.0 / (2.0 + 0.5 * 1.0);  // TP=2, FP=1, FN=0
  EXPECT_DOUBLE_EQ(cm.F1(0), f1_class0);
  EXPECT_DOUBLE_EQ(cm.F1(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), (f1_class0 + 0.0) / 2.0);
}

TEST(ConfusionMatrix, PrecisionRecall) {
  ConfusionMatrix cm({1, 1, 0}, {1, 0, 1});
  EXPECT_DOUBLE_EQ(cm.Precision(1), 0.5);  // 1 of 2 predicted 1s correct
  EXPECT_DOUBLE_EQ(cm.Recall(1), 0.5);     // 1 of 2 true 1s found
}

TEST(ConfusionMatrix, LabelsUnionOfTruthAndPred) {
  ConfusionMatrix cm({0}, {5});
  const auto labels = cm.Labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 5);
}

TEST(Earliness, FullConsumptionIsOne) {
  EXPECT_DOUBLE_EQ(MeanEarliness({10, 10}, {10, 10}), 1.0);
}

TEST(Earliness, AveragesRatios) {
  // 5/10 and 10/20 -> 0.5.
  EXPECT_DOUBLE_EQ(MeanEarliness({5, 10}, {10, 20}), 0.5);
}

TEST(Earliness, EmptyIsNaN) {
  // "Nothing evaluated" must stay distinguishable from a genuine worst-case
  // earliness of 1.0 (empty CV test folds report NaN, which aggregators skip).
  EXPECT_TRUE(std::isnan(MeanEarliness({}, {})));
}

TEST(Scores, EmptyEvaluationIsNaN) {
  const EvalScores scores = ComputeScores({}, {}, {}, {});
  EXPECT_TRUE(std::isnan(scores.accuracy));
  EXPECT_TRUE(std::isnan(scores.f1));
  EXPECT_TRUE(std::isnan(scores.earliness));
  EXPECT_TRUE(std::isnan(scores.harmonic_mean));
}

TEST(Earliness, ClampedAtOne) {
  // Prefix longer than the series cannot push earliness above 1.
  EXPECT_DOUBLE_EQ(MeanEarliness({20}, {10}), 1.0);
}

TEST(HarmonicMeanMetric, ZeroWhenFullSeriesNeeded) {
  // Sec 2.2: HM is zero when earliness is 1.
  EXPECT_DOUBLE_EQ(HarmonicMean(1.0, 1.0), 0.0);
}

TEST(HarmonicMeanMetric, ZeroWhenAccuracyZero) {
  EXPECT_DOUBLE_EQ(HarmonicMean(0.0, 0.2), 0.0);
}

TEST(HarmonicMeanMetric, BalancedCase) {
  // acc = 0.8, earliness = 0.2 -> 2*0.8*0.8/(1.6) = 0.8.
  EXPECT_DOUBLE_EQ(HarmonicMean(0.8, 0.2), 0.8);
}

TEST(HarmonicMeanMetric, FormulaMatchesPaper) {
  const double acc = 0.9, early = 0.3;
  const double expected = 2.0 * acc * (1.0 - early) / (acc + (1.0 - early));
  EXPECT_DOUBLE_EQ(HarmonicMean(acc, early), expected);
}

TEST(ComputeScoresFn, BundlesAllMetrics) {
  const EvalScores scores =
      ComputeScores({1, 0, 1, 0}, {1, 0, 0, 0}, {5, 5, 10, 10}, {10, 10, 10, 10});
  EXPECT_DOUBLE_EQ(scores.accuracy, 0.75);
  EXPECT_DOUBLE_EQ(scores.earliness, 0.75);
  EXPECT_DOUBLE_EQ(scores.harmonic_mean, HarmonicMean(0.75, 0.75));
  EXPECT_GT(scores.f1, 0.0);
  EXPECT_FALSE(scores.ToString().empty());
}

}  // namespace
}  // namespace etsc
