// The SIMD substrate's contract (DESIGN.md sec 13): every kernel is
// bit-identical between the explicit-vector path and the always-built scalar
// reference (ETSC_SIMD=0), the SoA storage keeps padding invisible (golden
// fingerprints from the pre-SoA layout reproduce exactly), and whole
// evaluations are unchanged by the kernel path or the thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "algos/ects.h"
#include "core/arff.h"
#include "core/csv.h"
#include "core/dataset.h"
#include "core/evaluation.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/simd.h"
#include "core/time_series.h"
#include "ml/distance.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<double> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.Gaussian();
  return out;
}

/// Forces the dispatch path for the lifetime of a scope, then re-reads the
/// environment (so tests cannot leak a forced path into each other).
class ScopedSimd {
 public:
  explicit ScopedSimd(int enabled) { simd::SetEnabledForTest(enabled); }
  ~ScopedSimd() { simd::SetEnabledForTest(-1); }
};

// ---------------------------------------------------------------------------
// Kernel bit-exactness: vector dispatch vs the scalar reference
// ---------------------------------------------------------------------------

TEST(SimdKernels, SumSqDiffMatchesScalarBitForBit) {
  ScopedSimd on(1);
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 15u, 16u, 17u, 31u, 64u, 257u}) {
    const auto a = RandomVec(n, 1000 + n);
    const auto b = RandomVec(n, 2000 + n);
    const double vec = simd::SumSqDiff(a.data(), b.data(), n);
    const double ref = simd::scalar::SumSqDiff(a.data(), b.data(), n);
    EXPECT_TRUE(SameBits(vec, ref)) << "n=" << n;
  }
}

TEST(SimdKernels, MinSubseriesSqMatchesScalarIncludingCounters) {
  ScopedSimd on(1);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (size_t m : {1u, 4u, 7u, 16u, 19u, 33u, 64u}) {
    for (size_t n : {64u, 100u, 257u}) {
      const auto pattern = RandomVec(m, 10 * m + n);
      const auto series = RandomVec(n, 20 * m + n);
      for (double bound : {kInf, 30.0, 5.0, 0.5}) {
        uint64_t vw = 0, va = 0, sw = 0, sa = 0;
        const double vec = simd::MinSubseriesSq(pattern.data(), m,
                                                series.data(), n, bound, &vw,
                                                &va);
        const double ref = simd::scalar::MinSubseriesSq(
            pattern.data(), m, series.data(), n, bound, &sw, &sa);
        EXPECT_TRUE(SameBits(vec, ref)) << "m=" << m << " n=" << n;
        EXPECT_EQ(vw, sw) << "windows m=" << m << " n=" << n;
        EXPECT_EQ(va, sa) << "abandoned m=" << m << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, AxpyCountGreaterRotateMatchScalar) {
  ScopedSimd on(1);
  for (size_t n : {1u, 4u, 13u, 64u, 100u}) {
    const auto x = RandomVec(n, 3000 + n);
    auto out_v = RandomVec(n, 4000 + n);
    auto out_s = out_v;
    simd::Axpy(1.75, x.data(), out_v.data(), n);
    simd::scalar::Axpy(1.75, x.data(), out_s.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(SameBits(out_v[i], out_s[i])) << "axpy n=" << n << " i=" << i;
    }

    EXPECT_EQ(simd::CountGreater(x.data(), n, 0.25),
              simd::scalar::CountGreater(x.data(), n, 0.25));

    const auto cos_t = RandomVec(n, 5000 + n);
    const auto sin_t = RandomVec(n, 6000 + n);
    auto re_v = RandomVec(n, 7000 + n);
    auto im_v = RandomVec(n, 8000 + n);
    auto re_s = re_v;
    auto im_s = im_v;
    simd::RotatePhasors(cos_t.data(), sin_t.data(), 0.375, re_v.data(),
                        im_v.data(), n);
    simd::scalar::RotatePhasors(cos_t.data(), sin_t.data(), 0.375, re_s.data(),
                                im_s.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(SameBits(re_v[i], re_s[i])) << "re n=" << n << " i=" << i;
      EXPECT_TRUE(SameBits(im_v[i], im_s[i])) << "im n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernels, SplitScanMatchesScalar) {
  ScopedSimd on(1);
  for (size_t n : {2u, 8u, 37u, 100u, 513u}) {
    auto xv = RandomVec(n, 9000 + n);
    std::sort(xv.begin(), xv.end());
    // Duplicate a run of values so the equal-values guard is exercised.
    if (n >= 8) std::fill(xv.begin() + 2, xv.begin() + 6, xv[2]);
    const auto g = RandomVec(n, 10000 + n);
    std::vector<double> pg(n), ph(n);
    double tg = 0.0, th = 0.0;
    for (size_t i = 0; i < n; ++i) {
      tg += g[i];
      th += 1.0;
      pg[i] = tg;
      ph[i] = th;
    }
    const double parent = tg * tg / th;
    for (size_t leaf : {0u, 1u, 5u}) {
      const simd::SplitScanBest vec =
          simd::SplitScan(xv.data(), pg.data(), ph.data(), n, tg, th, parent,
                          leaf);
      const simd::SplitScanBest ref = simd::scalar::SplitScan(
          xv.data(), pg.data(), ph.data(), n, tg, th, parent, leaf);
      EXPECT_TRUE(SameBits(vec.gain, ref.gain)) << "n=" << n << " leaf=" << leaf;
      EXPECT_EQ(vec.pos, ref.pos) << "n=" << n << " leaf=" << leaf;
    }
  }
}

TEST(SimdKernels, DisabledPathUsesScalarIsa) {
  {
    ScopedSimd off(0);
    EXPECT_FALSE(simd::Enabled());
    EXPECT_STREQ(simd::ActiveIsa(), "scalar");
  }
  if (std::string(simd::CompiledIsa()) != "scalar") {
    ScopedSimd on(1);
    EXPECT_TRUE(simd::Enabled());
    EXPECT_STREQ(simd::ActiveIsa(), simd::CompiledIsa());
  }
}

// ---------------------------------------------------------------------------
// ETSC_SIMD environment validation (same contract as ETSC_THREADS)
// ---------------------------------------------------------------------------

class SimdEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("ETSC_SIMD");
    simd::SetEnabledForTest(-1);
  }
  /// Re-reads ETSC_SIMD from the environment and reports the decision.
  bool EnabledFromEnv(const char* value) {
    if (value == nullptr) {
      ::unsetenv("ETSC_SIMD");
    } else {
      ::setenv("ETSC_SIMD", value, 1);
    }
    simd::SetEnabledForTest(-1);
    return simd::Enabled();
  }
};

TEST_F(SimdEnvTest, ParsesAndValidates) {
  if (std::string(simd::CompiledIsa()) == "scalar") {
    GTEST_SKIP() << "no vector ISA in this build";
  }
  EXPECT_TRUE(EnabledFromEnv(nullptr));   // unset: default on
  EXPECT_TRUE(EnabledFromEnv(""));        // empty: default on
  EXPECT_FALSE(EnabledFromEnv("0"));
  EXPECT_TRUE(EnabledFromEnv("1"));
  EXPECT_FALSE(EnabledFromEnv("0 "));     // trailing whitespace tolerated
  // Garbage keeps the default instead of silently flipping the path.
  EXPECT_TRUE(EnabledFromEnv("yes"));
  EXPECT_TRUE(EnabledFromEnv("01x"));
  EXPECT_TRUE(EnabledFromEnv("2"));
  EXPECT_TRUE(EnabledFromEnv("-1"));
  EXPECT_TRUE(EnabledFromEnv("99999999999999999999999999"));
}

TEST_F(SimdEnvTest, WhitespaceTolerantZeroDisables) {
  if (std::string(simd::CompiledIsa()) == "scalar") {
    GTEST_SKIP() << "no vector ISA in this build";
  }
  EXPECT_FALSE(EnabledFromEnv("0"));
  EXPECT_FALSE(EnabledFromEnv("0\t"));
}

// ---------------------------------------------------------------------------
// Whole-evaluation invariance: kernel path and thread count change nothing
// ---------------------------------------------------------------------------

EvalScores RunEcts(const Dataset& data) {
  EctsClassifier ects{EctsOptions{}};
  EvaluationOptions options;
  options.num_folds = 3;
  const EvaluationResult result = CrossValidate(data, ects, options);
  for (const auto& fold : result.folds) EXPECT_TRUE(fold.trained);
  return result.MeanScores();
}

TEST(SimdEquivalence, EvalScoresIdenticalAcrossSimdAndThreads) {
  const Dataset data = testing::MakeToyDataset(12, 32);
  EvalScores scalar_scores, simd_scores, parallel_scores;
  {
    ScopedSimd off(0);
    scalar_scores = RunEcts(data);
  }
  {
    ScopedSimd on(1);
    simd_scores = RunEcts(data);
    SetMaxParallelism(4);
    parallel_scores = RunEcts(data);
    SetMaxParallelism(0);
  }
  EXPECT_TRUE(SameBits(scalar_scores.accuracy, simd_scores.accuracy));
  EXPECT_TRUE(SameBits(scalar_scores.f1, simd_scores.f1));
  EXPECT_TRUE(SameBits(scalar_scores.earliness, simd_scores.earliness));
  EXPECT_TRUE(
      SameBits(scalar_scores.harmonic_mean, simd_scores.harmonic_mean));
  EXPECT_TRUE(SameBits(simd_scores.accuracy, parallel_scores.accuracy));
  EXPECT_TRUE(SameBits(simd_scores.f1, parallel_scores.f1));
  EXPECT_TRUE(SameBits(simd_scores.earliness, parallel_scores.earliness));
  EXPECT_TRUE(
      SameBits(simd_scores.harmonic_mean, parallel_scores.harmonic_mean));
}

TEST(SimdEquivalence, DistanceFrontEndIdenticalAcrossPaths) {
  const auto pattern = RandomVec(23, 77);
  const auto series = RandomVec(301, 78);
  double on_full, on_ea, off_full, off_ea;
  {
    ScopedSimd on(1);
    on_full = MinSubseriesDistanceSq(pattern, series);
    on_ea = MinSubseriesDistanceSqEarlyAbandon(pattern, series, on_full * 1.01);
  }
  {
    ScopedSimd off(0);
    off_full = MinSubseriesDistanceSq(pattern, series);
    off_ea =
        MinSubseriesDistanceSqEarlyAbandon(pattern, series, off_full * 1.01);
  }
  EXPECT_TRUE(SameBits(on_full, off_full));
  EXPECT_TRUE(SameBits(on_ea, off_ea));
}

// ---------------------------------------------------------------------------
// SoA layout invariants
// ---------------------------------------------------------------------------

TEST(SoaLayout, StrideIsPaddedAndPaddingInvisible) {
  for (size_t len : {0u, 1u, 3u, 4u, 5u, 17u}) {
    TimeSeries ts(2, len);
    EXPECT_EQ(ts.stride(), PaddedLength(len));
    EXPECT_EQ(ts.stride() % kSimdWidthDoubles, 0u);
    EXPECT_EQ(ts.channel(0).size(), len);
    EXPECT_EQ(ts.channel(1).size(), len);
  }
  // Padding bytes never reach the logical values or the fingerprint.
  TimeSeries a = TimeSeries::Univariate({1.0, 2.0, 3.0});
  EXPECT_EQ(a.length(), 3u);
  EXPECT_EQ(a.stride(), 4u);
  EXPECT_EQ(a.channel(0)[2], 3.0);
}

TEST(SoaLayout, AppendObservationGrowsAndClearRezeroes) {
  TimeSeries ts(2, 0);
  for (size_t t = 0; t < 19; ++t) {
    ts.AppendObservation({static_cast<double>(t), -static_cast<double>(t)});
    EXPECT_EQ(ts.length(), t + 1);
    EXPECT_EQ(ts.stride() % kSimdWidthDoubles, 0u);
    EXPECT_GE(ts.stride(), ts.length());
  }
  for (size_t t = 0; t < 19; ++t) {
    EXPECT_EQ(ts.at(0, t), static_cast<double>(t));
    EXPECT_EQ(ts.at(1, t), -static_cast<double>(t));
  }
  ts.ClearValues();
  EXPECT_EQ(ts.length(), 0u);
  EXPECT_EQ(ts.num_variables(), 2u);
  ts.AppendObservation({5.0, 6.0});
  EXPECT_EQ(ts.at(0, 0), 5.0);
  EXPECT_EQ(ts.at(1, 0), 6.0);
}

TEST(SoaLayout, DatasetViewsAliasThePoolAndCopiesDetach) {
  Dataset data = testing::MakeToyDataset(3, 10);
  // instance(i) is a view into the shared pool...
  EXPECT_FALSE(data.instance(0).owns_storage());
  // ...and copying it out detaches into owning storage with equal values.
  TimeSeries copy = data.instance(1);
  EXPECT_TRUE(copy.owns_storage());
  ASSERT_EQ(copy.length(), data.instance(1).length());
  for (size_t t = 0; t < copy.length(); ++t) {
    EXPECT_EQ(copy.at(0, t), data.instance(1).at(0, t));
  }
  // Copying the dataset re-targets views into the new pool.
  Dataset clone = data;
  EXPECT_NE(clone.instance(0).channel_data(0), data.instance(0).channel_data(0));
  EXPECT_EQ(clone.Fingerprint(), data.Fingerprint());
}

TEST(SoaLayout, AddingAViewOfTheSamePoolIsSafe) {
  Dataset data = testing::MakeToyDataset(2, 8);
  // Adding a view of this dataset's own pool must deep-copy before the pool
  // grows underneath it.
  for (int i = 0; i < 10; ++i) {
    data.Add(data.instance(0), 7);
  }
  EXPECT_EQ(data.size(), 14u);
  for (size_t i = 4; i < 14; ++i) {
    ASSERT_EQ(data.instance(i).length(), data.instance(0).length());
    for (size_t t = 0; t < data.instance(0).length(); ++t) {
      EXPECT_EQ(data.instance(i).at(0, t), data.instance(0).at(0, t));
    }
    EXPECT_EQ(data.label(i), 7);
  }
}

// ---------------------------------------------------------------------------
// Golden fingerprints: the SoA layout must hash exactly like the pre-SoA
// array-of-structures layout. Values captured from the pre-SoA tree compiled
// with the repo's own flags (-O3 -march=native — the toy generators are
// inline, so their low-order FP bits depend on the instantiating TU's
// contraction choices; capture goldens with matching flags).
// ---------------------------------------------------------------------------

TEST(SoaGolden, ToyDatasetsFingerprintUnchanged) {
  EXPECT_EQ(testing::MakeToyDataset().Fingerprint(), 2663709883990218226ULL);
  EXPECT_EQ(testing::MakeToyMultivariate().Fingerprint(),
            2295164349667963653ULL);
}

TEST(SoaGolden, DerivedViewsFingerprintUnchanged) {
  const Dataset toy = testing::MakeToyDataset();
  const Dataset mv = testing::MakeToyMultivariate();
  EXPECT_EQ(toy.Truncated(17).Fingerprint(), 3756445015908641855ULL);
  EXPECT_EQ(mv.SingleVariable(1).Fingerprint(), 5562910799598460025ULL);
  EXPECT_EQ(toy.Subset({3, 1, 4, 1, 5, 9, 2, 6}).Fingerprint(),
            341290907350399545ULL);
}

TEST(SoaGolden, CsvRoundTripFingerprintUnchanged) {
  const Dataset toy = testing::MakeToyDataset();
  const std::string path =
      ::testing::TempDir() + "/etsc_simd_golden_toy.csv";
  ASSERT_TRUE(SaveCsv(toy, path).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  loaded->set_name("toy");
  EXPECT_EQ(loaded->Fingerprint(), 10649833367675409526ULL);
  std::remove(path.c_str());
}

TEST(SoaGolden, ArffParseFingerprintUnchanged) {
  const char* arff =
      "@relation golden\n"
      "@attribute t1 numeric\n@attribute t2 numeric\n@attribute t3 numeric\n"
      "@attribute t4 numeric\n@attribute t5 numeric\n"
      "@attribute target {a,b}\n"
      "@data\n"
      "0.5,1.25,-3.0,0.0,2.5,a\n"
      "1.0,-1.5,0.125,4.0,-0.25,b\n"
      "2.0,3.5,-1.125,0.75,0.5,a\n";
  auto parsed = ParseArff(arff);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 3u);
  EXPECT_EQ(parsed->MaxLength(), 5u);
  EXPECT_EQ(parsed->Fingerprint(), 8393685266116348647ULL);
}

// Fitted-model persistence over pool-backed datasets: a model fitted on SoA
// views must save and restore to bit-identical predictions.
TEST(SoaGolden, SaveLoadFittedOverPoolBackedDataset) {
  const Dataset data = testing::MakeToyDataset(8, 24);
  EctsClassifier fitted{EctsOptions{}};
  ASSERT_TRUE(fitted.Fit(data).ok());
  std::stringstream stream;
  ASSERT_TRUE(fitted.Save(stream).ok());
  EctsClassifier restored{EctsOptions{}};
  ASSERT_TRUE(restored.LoadFitted(stream).ok());
  for (size_t i = 0; i < data.size(); ++i) {
    const auto a = fitted.PredictEarly(data.instance(i));
    const auto b = restored.PredictEarly(data.instance(i));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->label, b->label);
    EXPECT_EQ(a->prefix_length, b->prefix_length);
  }
}

}  // namespace
}  // namespace etsc
