#include "core/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "algos/ects.h"
#include "core/counters.h"
#include "core/evaluation.h"
#include "core/json.h"
#include "core/log.h"
#include "core/parallel.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

/// Enables tracing on a clean buffer for one test and restores the disabled
/// default (plus another Clear) on scope exit.
class ScopedTracing {
 public:
  explicit ScopedTracing(bool enabled) {
    trace::Clear();
    trace::SetEnabled(enabled);
  }
  ~ScopedTracing() {
    trace::SetEnabled(false);
    trace::Clear();
  }
};

// ---------------------------------------------------------------------------
// Span recording
// ---------------------------------------------------------------------------

TEST(Trace, DisabledRecordsNothingAndSkipsNameFormatting) {
  ScopedTracing scoped(false);
  bool name_formatted = false;
  {
    TraceSpan named("test", "static_name");
    TraceSpan dynamic("test", [&] {
      name_formatted = true;
      return std::string("dynamic_name");
    });
  }
  EXPECT_EQ(trace::EventCount(), 0u);
  // The overhead contract: dynamic span names cost nothing when tracing is
  // off — the callable must never run.
  EXPECT_FALSE(name_formatted);
}

TEST(Trace, EnabledRecordsSpansWithMonotonicBounds) {
  ScopedTracing scoped(true);
  {
    TraceSpan outer("test", "outer");
    TraceSpan inner("test", [] { return std::string("inner"); });
  }
  EXPECT_EQ(trace::EventCount(), 2u);
}

TEST(Trace, ToChromeJsonIsValidTraceEventFormat) {
  ScopedTracing scoped(true);
  { TraceSpan span("cat_a", "span_one"); }
  { TraceSpan span("cat_b", "span_two"); }

  const auto parsed = json::Parse(trace::ToChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);

  std::set<std::string> names;
  for (const json::Value& event : events->array) {
    ASSERT_TRUE(event.is_object());
    // Complete events carry name/cat/ph/ts/dur/pid/tid.
    ASSERT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("cat"), nullptr);
    ASSERT_NE(event.Find("ph"), nullptr);
    EXPECT_EQ(event.Find("ph")->AsString(), "X");
    ASSERT_NE(event.Find("ts"), nullptr);
    ASSERT_NE(event.Find("dur"), nullptr);
    EXPECT_GE(event.Find("dur")->AsNumber(), 0.0);
    ASSERT_NE(event.Find("pid"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
    names.insert(event.Find("name")->AsString());
  }
  EXPECT_TRUE(names.count("span_one"));
  EXPECT_TRUE(names.count("span_two"));
}

TEST(Trace, WriteChromeTraceRoundTripsThroughAFile) {
  ScopedTracing scoped(true);
  { TraceSpan span("test", "file_span"); }
  const std::string path = ::testing::TempDir() + "etsc_trace_test.json";
  ASSERT_TRUE(trace::WriteChromeTrace(path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_NE(parsed->Find("traceEvents"), nullptr);
  std::remove(path.c_str());
}

TEST(Trace, SpansFromPoolThreadsAreCollected) {
  ScopedTracing scoped(true);
  SetMaxParallelism(4);
  ParallelFor(16, [](size_t) { TraceSpan span("test", "loop_body"); });
  SetMaxParallelism(0);
  // 16 loop_body spans plus the pool's own pool_task spans; the exact worker
  // count is scheduling-dependent, the lower bound is not.
  EXPECT_GE(trace::EventCount(), 16u);
}

// ---------------------------------------------------------------------------
// Evaluation spans end-to-end
// ---------------------------------------------------------------------------

TEST(Trace, CrossValidateEmitsFoldFitAndPredictSpans) {
  ScopedTracing scoped(true);
  const Dataset data = testing::MakeToyDataset(10, 16);
  EctsClassifier ects{EctsOptions{}};
  EvaluationOptions options;
  options.num_folds = 2;
  const EvaluationResult result = CrossValidate(data, ects, options);
  ASSERT_TRUE(result.trained());

  const auto parsed = json::Parse(trace::ToChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::set<std::string> names;
  for (const json::Value& event : parsed->Find("traceEvents")->array) {
    names.insert(event.Find("name")->AsString());
  }
  EXPECT_TRUE(names.count("fold:ECTS"));
  EXPECT_TRUE(names.count("Fit:ECTS"));
  EXPECT_TRUE(names.count("PredictEarly"));
}

TEST(Trace, TracingOnDoesNotPerturbDeterminism) {
  // The observability layer records wall-clock only; serial and parallel
  // CrossValidate must stay bit-identical with tracing enabled (DESIGN.md
  // sections 8 and 9).
  ScopedTracing scoped(true);
  const Dataset data = testing::MakeToyDataset(12, 20);
  EctsClassifier ects{EctsOptions{}};
  EvaluationOptions options;
  options.num_folds = 3;

  SetMaxParallelism(1);
  const EvaluationResult serial = CrossValidate(data, ects, options);
  SetMaxParallelism(8);
  const EvaluationResult parallel = CrossValidate(data, ects, options);
  SetMaxParallelism(0);

  ASSERT_EQ(serial.folds.size(), parallel.folds.size());
  for (size_t f = 0; f < serial.folds.size(); ++f) {
    EXPECT_EQ(serial.folds[f].scores.accuracy, parallel.folds[f].scores.accuracy);
    EXPECT_EQ(serial.folds[f].scores.f1, parallel.folds[f].scores.f1);
    EXPECT_EQ(serial.folds[f].scores.earliness,
              parallel.folds[f].scores.earliness);
    EXPECT_EQ(serial.folds[f].scores.harmonic_mean,
              parallel.folds[f].scores.harmonic_mean);
  }
}

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

TEST(Counters, CounterGaugeHistogramBasics) {
  Counter counter;
  counter.Add();
  counter.Add(4);
  EXPECT_EQ(counter.value(), 5u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);

  Gauge gauge;
  gauge.Add(3);
  gauge.Add(2);
  gauge.Add(-4);
  EXPECT_EQ(gauge.value(), 1);
  EXPECT_EQ(gauge.max_value(), 5);

  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_TRUE(std::isnan(hist.mean()));
  hist.Record(0.5);
  hist.Record(1.5);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_DOUBLE_EQ(hist.sum(), 2.0);
  EXPECT_DOUBLE_EQ(hist.min(), 0.5);
  EXPECT_DOUBLE_EQ(hist.max(), 1.5);
  EXPECT_DOUBLE_EQ(hist.mean(), 1.0);
}

TEST(Counters, HistogramBucketsCoverUnderflowAndOverflow) {
  Histogram hist;
  hist.Record(-1.0);   // negative -> underflow (a broken clock, not a duration)
  hist.Record(1e12);   // beyond the largest decade -> overflow
  hist.Record(0.5);    // inside a decade bucket
  // Zero and sub-nanosecond values are real coarse-clock measurements
  // ("faster than one tick"): they land in the fastest bucket, not underflow.
  hist.Record(0.0);
  hist.Record(1e-12);
  EXPECT_EQ(hist.bucket(Histogram::kUnderflow), 1u);
  EXPECT_EQ(hist.bucket(Histogram::kOverflow), 1u);
  EXPECT_EQ(hist.bucket(0), 2u);  // the zero-based [0, 1e-8) bucket
  uint64_t in_range = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) in_range += hist.bucket(b);
  EXPECT_EQ(in_range, 3u);
}

TEST(Counters, HistogramQuantilesTrackTheRecordedDistribution) {
  Histogram hist;
  EXPECT_TRUE(std::isnan(hist.Quantile(0.5)));
  // 100 values in the [1e-4, 1e-3) decade, one outlier two decades up.
  for (int i = 0; i < 100; ++i) hist.Record(5e-4);
  hist.Record(5e-2);
  const double p50 = hist.Quantile(0.5);
  EXPECT_GE(p50, 1e-4);
  EXPECT_LT(p50, 1e-3);
  // p99 of 101 samples is still rank 100 -> inside the dominant decade.
  EXPECT_LT(hist.Quantile(0.99), 1e-3);
  // The extremes clamp to the exact observed min/max.
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 5e-4);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 5e-2);
}

TEST(Counters, HistogramQuantileOfAllZeroDurationsIsZero) {
  // A coarse clock can report 0 for every fast operation; the quantiles must
  // then report (near-)zero latency, not NaN and not an underflow artefact.
  Histogram hist;
  for (int i = 0; i < 10; ++i) hist.Record(0.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.99), 0.0);
}

TEST(Counters, RegistryInternsByNameAndSnapshotsAsJson) {
  MetricRegistry& registry = MetricRegistry::Global();
  Counter& a = registry.counter("test.interned_counter");
  Counter& b = registry.counter("test.interned_counter");
  EXPECT_EQ(&a, &b);  // stable reference: call sites may cache it

  a.Add(7);
  registry.gauge("test.snapshot_gauge").Set(-3);
  registry.histogram("test.snapshot_histogram").Record(0.25);

  const auto parsed = json::Parse(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* counter = counters->Find("test.interned_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->AsNumber(), 7.0);
  const json::Value* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Find("test.snapshot_gauge"), nullptr);
  const json::Value* hists = parsed->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* hist = hists->Find("test.snapshot_histogram");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->Find("count")->AsNumber(), 1.0);
}

TEST(Counters, DisablingMetricsStopsHotPathRecording) {
  MetricRegistry& registry = MetricRegistry::Global();
  Counter& executed = registry.counter("pool.tasks_executed");
  SetMetricsEnabled(false);
  const uint64_t before = executed.value();
  SetMaxParallelism(4);
  ParallelFor(64, [](size_t) {});
  SetMaxParallelism(0);
  EXPECT_EQ(executed.value(), before);
  SetMetricsEnabled(true);
}

TEST(Counters, InstrumentedEvaluationFeedsTheRegistry) {
  MetricRegistry& registry = MetricRegistry::Global();
  Counter& folds = registry.counter("eval.folds_run");
  Counter& predictions = registry.counter("eval.predictions");
  const uint64_t folds_before = folds.value();
  const uint64_t predictions_before = predictions.value();

  const Dataset data = testing::MakeToyDataset(10, 16);
  EctsClassifier ects{EctsOptions{}};
  EvaluationOptions options;
  options.num_folds = 2;
  const EvaluationResult result = CrossValidate(data, ects, options);
  ASSERT_TRUE(result.trained());

  EXPECT_EQ(folds.value(), folds_before + 2);
  EXPECT_GT(predictions.value(), predictions_before);
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

TEST(Log, ParseLogLevelRecognisesNamesAndFallsBack) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("verbose", LogLevel::kWarn), LogLevel::kWarn);
}

TEST(Log, MinLevelGatesEmission) {
  const LogLevel restore = MinLogLevel();
  SetMinLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  SetMinLogLevel(LogLevel::kOff);
  EXPECT_FALSE(LogEnabled(LogLevel::kError));
  SetMinLogLevel(restore);
}

// ---------------------------------------------------------------------------
// JSON layer
// ---------------------------------------------------------------------------

TEST(Json, WriterProducesParseableDocumentsWithEscapes) {
  json::Writer w;
  w.BeginObject();
  w.Field("text", std::string("line1\nline2, \"quoted\" \\slash"));
  w.Field("finite", 0.1);
  w.Key("not_finite").Number(std::nan(""));
  w.Key("list").BeginArray().Number(1).Number(2).EndArray();
  w.EndObject();

  const auto parsed = json::Parse(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("text")->AsString(),
            "line1\nline2, \"quoted\" \\slash");
  EXPECT_DOUBLE_EQ(parsed->Find("finite")->AsNumber(), 0.1);
  EXPECT_TRUE(std::isnan(parsed->Find("not_finite")->AsNumber()));
  EXPECT_EQ(parsed->Find("list")->array.size(), 2u);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(json::Parse("[1,2] trailing").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
}

}  // namespace
}  // namespace etsc
