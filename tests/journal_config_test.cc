#include "bench/bench_common.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"
#include "core/parallel.h"

namespace etsc {
namespace {

/// Sets one environment variable for the scope of a test and restores the
/// previous value (or unsets) on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* previous = std::getenv(name);
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_previous_) {
      ::setenv(name_.c_str(), previous_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string previous_;
  bool had_previous_ = false;
};

bench::CampaignConfig JournalConfig(const std::string& cache_name) {
  bench::CampaignConfig config;
  config.algorithms = {"ECTS"};
  config.datasets = {"DodgerLoopGame"};
  config.folds = 2;
  config.height_scale = 1.0;
  config.train_budget_seconds = 30.0;
  config.cache_path = ::testing::TempDir() + cache_name;
  std::remove(config.cache_path.c_str());
  std::remove((config.cache_path + ".stale").c_str());
  std::remove((config.cache_path + ".report.json").c_str());
  return config;
}

/// One pre-escaped journal row in the on-disk format.
std::string Row(const std::string& algorithm, const std::string& dataset,
                double accuracy, const std::string& failure) {
  std::ostringstream ss;
  ss << algorithm << ',' << dataset << ",1," << accuracy
     << ",0.5,0.25,0.5,1,0.001,0,0," << bench::EscapeJournalField(failure)
     << ",#end";
  return ss.str();
}

void WriteJournal(const bench::CampaignConfig& config,
                  const std::vector<std::string>& rows) {
  // The header Campaign expects: config fingerprint + dataset fingerprint.
  const auto header = bench::JournalHeaderForConfig(config);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  std::ofstream out(config.cache_path, std::ios::trunc);
  out << *header << "\n";
  for (const auto& row : rows) out << row << "\n";
}

// ---------------------------------------------------------------------------
// Journal field escaping
// ---------------------------------------------------------------------------

TEST(JournalEscape, RoundTripsEveryReservedCharacter) {
  const std::string nasty = "a,b\nnext\rline\\tail,#end\\n";
  const std::string escaped = bench::EscapeJournalField(nasty);
  // A single line without separators: safe to embed as one CSV field.
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\r'), std::string::npos);
  EXPECT_EQ(escaped.find(','), std::string::npos);
  EXPECT_EQ(bench::UnescapeJournalField(escaped), nasty);
}

TEST(JournalEscape, SentinelCannotBeForged) {
  // The end-of-row sentinel starts with a comma; with every comma escaped, no
  // failure message can terminate a row early.
  const std::string escaped = bench::EscapeJournalField(",#end");
  EXPECT_EQ(escaped.find(','), std::string::npos);
  EXPECT_EQ(bench::UnescapeJournalField(escaped), ",#end");
}

TEST(JournalEscape, UnknownEscapesPassThroughVerbatim) {
  EXPECT_EQ(bench::UnescapeJournalField("a\\qb"), "a\\qb");
  EXPECT_EQ(bench::UnescapeJournalField("trailing\\"), "trailing\\");
}

// ---------------------------------------------------------------------------
// Journal round trip: hostile failure strings and duplicate rows
// ---------------------------------------------------------------------------

TEST(Journal, FailureWithNewlineAndSentinelRoundTrips) {
  auto config = JournalConfig("journal_escape.csv");
  config.report_only = true;  // load only: the cells come from the journal
  const std::string failure = "fit failed:\nline two with ,#end inside, done";
  WriteJournal(config, {Row("ECTS", "DodgerLoopGame", 0.75, failure)});

  bench::Campaign campaign(config);
  campaign.Run();
  ASSERT_EQ(campaign.cells().size(), 1u);
  const bench::CampaignCell* cell = campaign.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->failure, failure);  // byte-for-byte after unescaping
  EXPECT_DOUBLE_EQ(cell->accuracy, 0.75);
}

TEST(Journal, DuplicateRowsKeepTheLastResult) {
  auto config = JournalConfig("journal_dupes.csv");
  config.report_only = true;
  // A resumed campaign journalled the same cell twice: the later (fresher)
  // row must win both in cells() and through Find().
  WriteJournal(config, {Row("ECTS", "DodgerLoopGame", 0.25, "stale, result"),
                        Row("ECTS", "DodgerLoopGame", 0.875, "")});

  bench::Campaign campaign(config);
  campaign.Run();
  ASSERT_EQ(campaign.cells().size(), 1u);  // deduplicated, not doubled
  const bench::CampaignCell* cell = campaign.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(cell, nullptr);
  EXPECT_DOUBLE_EQ(cell->accuracy, 0.875);
  EXPECT_TRUE(cell->failure.empty());
}

TEST(Journal, TornRowIsSkippedButLaterRowsStillLoad) {
  auto config = JournalConfig("journal_torn.csv");
  config.report_only = true;
  const auto header = bench::JournalHeaderForConfig(config);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  std::ofstream out(config.cache_path, std::ios::trunc);
  out << *header << "\n";
  out << "ECTS,DodgerLoopGame,1,0.1";  // crash mid-write: no sentinel
  out << "\n" << Row("ECTS", "DodgerLoopGame", 0.625, "msg, with commas")
      << "\n";
  out.close();

  bench::Campaign campaign(config);
  campaign.Run();
  ASSERT_EQ(campaign.cells().size(), 1u);
  const bench::CampaignCell* cell = campaign.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(cell, nullptr);
  EXPECT_DOUBLE_EQ(cell->accuracy, 0.625);
  EXPECT_EQ(cell->failure, "msg, with commas");
}

// ---------------------------------------------------------------------------
// Shardable campaigns
// ---------------------------------------------------------------------------

/// Journal rows with the two timing fields blanked: what must be identical
/// between a sharded and an unsharded run (timings legitimately vary).
std::vector<std::string> RowsModuloTimings(const std::string& path,
                                           std::string* header) {
  std::vector<std::string> rows;
  std::ifstream in(path);
  std::string line;
  if (std::getline(in, line) && header != nullptr) *header = line;
  while (std::getline(in, line)) {
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    // algorithm,dataset,trained,acc,f1,earliness,hm,train_s,test_s,
    // retries,quarantined,failure...
    if (fields.size() > 8) fields[7] = fields[8] = "";
    std::string joined;
    for (const auto& f : fields) joined += f + ",";
    rows.push_back(joined);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(CampaignShard, ShardsPartitionTheGridAndMatchTheUnshardedRun) {
  auto full_config = JournalConfig("journal_shard_full.csv");
  full_config.algorithms = {"ECTS"};
  full_config.datasets = {"DodgerLoopGame", "PowerCons"};
  bench::Campaign full(full_config);
  full.Run();
  ASSERT_EQ(full.cells().size(), 2u);

  auto shard_base = JournalConfig("journal_shard.csv");
  shard_base.algorithms = full_config.algorithms;
  shard_base.datasets = full_config.datasets;
  std::vector<const bench::CampaignCell*> shard_cells;
  std::vector<std::string> shard_paths;
  for (size_t i = 0; i < 2; ++i) {
    auto config = shard_base;
    config.shard_index = i;
    config.shard_count = 2;
    bench::Campaign shard(config);
    // The constructor suffixes the journal path so shards never clobber each
    // other (or the unsharded journal).
    EXPECT_EQ(shard.config().cache_path,
              shard_base.cache_path + ".shard-" + std::to_string(i) + "-of-2");
    std::remove(shard.config().cache_path.c_str());
    shard.Run();
    // The 1x2 grid split two ways: each shard computes exactly one cell.
    EXPECT_EQ(shard.cells().size(), 1u);
    shard_paths.push_back(shard.config().cache_path);
    for (const auto& cell : shard.cells()) {
      const bench::CampaignCell* reference =
          full.Find(cell.algorithm, cell.dataset);
      ASSERT_NE(reference, nullptr) << cell.algorithm << "/" << cell.dataset;
      // Scores are bit-identical to the unsharded run, not merely close.
      EXPECT_EQ(cell.accuracy, reference->accuracy);
      EXPECT_EQ(cell.f1, reference->f1);
      EXPECT_EQ(cell.earliness, reference->earliness);
      EXPECT_EQ(cell.harmonic_mean, reference->harmonic_mean);
    }
  }

  // Both shard journals carry the SAME header as the unsharded journal (shard
  // coordinates are excluded from the config fingerprint), and the union of
  // their rows — timings aside — is exactly the unsharded journal.
  std::string full_header;
  std::vector<std::string> merged =
      RowsModuloTimings(full_config.cache_path, &full_header);
  std::vector<std::string> combined;
  for (const auto& path : shard_paths) {
    std::string header;
    for (auto& row : RowsModuloTimings(path, &header)) {
      combined.push_back(std::move(row));
    }
    EXPECT_EQ(header, full_header) << path;
  }
  std::sort(combined.begin(), combined.end());
  EXPECT_EQ(combined, merged);
}

// ---------------------------------------------------------------------------
// Environment parsing
// ---------------------------------------------------------------------------

TEST(CampaignEnv, GarbageNumericOverridesFallBackToDefaults) {
  ScopedEnv folds("ETSC_BENCH_FOLDS", "five");
  ScopedEnv scale("ETSC_BENCH_SCALE", "");
  ScopedEnv budget("ETSC_BENCH_BUDGET", "30x");
  ScopedEnv maritime("ETSC_BENCH_MARITIME", "-100");
  const bench::CampaignConfig defaults;
  const bench::CampaignConfig config = bench::CampaignConfig::FromEnv();
  // Bare strtod would have silently produced 0 for each of these.
  EXPECT_EQ(config.folds, defaults.folds);
  EXPECT_DOUBLE_EQ(config.height_scale, defaults.height_scale);
  EXPECT_DOUBLE_EQ(config.train_budget_seconds, defaults.train_budget_seconds);
  EXPECT_EQ(config.maritime_windows, defaults.maritime_windows);
}

TEST(CampaignEnv, ValidNumericOverridesParse) {
  ScopedEnv folds("ETSC_BENCH_FOLDS", "5");
  ScopedEnv scale("ETSC_BENCH_SCALE", "0.5");
  ScopedEnv budget("ETSC_BENCH_BUDGET", " 60 ");  // tolerates whitespace
  const bench::CampaignConfig config = bench::CampaignConfig::FromEnv();
  EXPECT_EQ(config.folds, 5u);
  EXPECT_DOUBLE_EQ(config.height_scale, 0.5);
  EXPECT_DOUBLE_EQ(config.train_budget_seconds, 60.0);
}

TEST(ThreadsEnv, GarbageThreadCountFallsBackToHardwareDefault) {
  {
    ScopedEnv threads("ETSC_THREADS", "lots");
    SetMaxParallelism(0);  // 0 = re-resolve from the environment
    EXPECT_GE(MaxParallelism(), 1u);
  }
  {
    ScopedEnv threads("ETSC_THREADS", "3");
    SetMaxParallelism(0);
    EXPECT_EQ(MaxParallelism(), 3u);
  }
  SetMaxParallelism(0);  // restore the ambient default for later tests
}

// ---------------------------------------------------------------------------
// JSON campaign report
// ---------------------------------------------------------------------------

TEST(CampaignReport, RoundTripsThroughJson) {
  auto config = JournalConfig("journal_report.csv");
  bench::Campaign campaign(config);
  campaign.Run();
  ASSERT_EQ(campaign.cells().size(), 1u);

  std::ifstream in(campaign.ReportPath());
  ASSERT_TRUE(in.good()) << campaign.ReportPath();
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->Find("fingerprint")->AsString(), config.Fingerprint());
  const json::Value* cells = parsed->Find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->array.size(), 1u);
  const json::Value& cell = cells->array[0];
  EXPECT_EQ(cell.Find("algorithm")->AsString(), "ECTS");
  EXPECT_EQ(cell.Find("dataset")->AsString(), "DodgerLoopGame");
  EXPECT_TRUE(cell.Find("trained")->AsBool());
  // max_digits10 doubles survive the round trip bit-exactly.
  EXPECT_EQ(cell.Find("accuracy")->AsNumber(), campaign.cells()[0].accuracy);
  const json::Value* phases = parsed->Find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_GE(phases->Find("compute_seconds")->AsNumber(), 0.0);
  // The metric snapshot rides along: the instrumented evaluation must have
  // recorded at least this run's folds.
  const json::Value* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const json::Value* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* folds_run = counters->Find("eval.folds_run");
  ASSERT_NE(folds_run, nullptr);
  EXPECT_GE(folds_run->AsNumber(), 2.0);
}

TEST(CampaignReport, FullyCachedRunStillWritesAReport) {
  auto config = JournalConfig("journal_report_cached.csv");
  {
    bench::Campaign campaign(config);
    campaign.Run();
  }
  bench::Campaign cached(config);
  std::remove(cached.ReportPath().c_str());
  cached.Run();  // every cell cached: no compute phase, report still written
  std::ifstream in(cached.ReportPath());
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->Find("cells_computed")->AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(parsed->Find("cells_loaded")->AsNumber(), 1.0);
}

}  // namespace
}  // namespace etsc
