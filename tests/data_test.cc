// Dataset substrate tests: the biological and maritime simulators and the ten
// UCR-like generators must reproduce the paper's shape metadata and Table-3
// category assignments.

#include <gtest/gtest.h>

#include <set>

#include "core/categorize.h"
#include "data/biological_sim.h"
#include "data/maritime_sim.h"
#include "data/repository.h"
#include "data/ucr_like.h"

namespace etsc {
namespace {

TEST(BiologicalSim, PaperShape) {
  BiologicalSimOptions options;
  options.num_simulations = 120;  // scaled for test speed
  const Dataset d = MakeBiologicalDataset(options);
  EXPECT_EQ(d.size(), 120u);
  EXPECT_EQ(d.NumVariables(), 3u);
  EXPECT_EQ(d.MaxLength(), 48u);
  EXPECT_EQ(d.NumClasses(), 2u);
  // 20/80 imbalance.
  const auto counts = d.ClassCounts();
  EXPECT_EQ(counts.at(1), 24u);
  EXPECT_EQ(counts.at(0), 96u);
}

TEST(BiologicalSim, InterestingRunsShrinkTumor) {
  BiologicalSimOptions options;
  options.num_simulations = 60;
  const Dataset d = MakeBiologicalDataset(options);
  for (size_t i = 0; i < d.size(); ++i) {
    const auto& alive = d.instance(i).channel(0);
    double peak = 0.0;
    for (double v : alive) peak = std::max(peak, v);
    const double final_value = alive.back();
    if (d.label(i) == 1) {
      EXPECT_LT(final_value, 0.75 * peak) << "interesting run " << i;
    }
  }
}

TEST(BiologicalSim, ClassesSimilarEarly) {
  // Before drug onset (~30%), class means of Necrotic counts are both ~0.
  BiologicalSimOptions options;
  options.num_simulations = 100;
  const Dataset d = MakeBiologicalDataset(options);
  double necrotic_early[2] = {0, 0};
  size_t n[2] = {0, 0};
  for (size_t i = 0; i < d.size(); ++i) {
    const auto& necrotic = d.instance(i).channel(1);
    double sum = 0.0;
    for (size_t t = 0; t < 8; ++t) sum += necrotic[t];
    necrotic_early[d.label(i)] += sum / 8.0;
    ++n[d.label(i)];
  }
  // Both classes have negligible necrotic mass in the first 8 points compared
  // to the initial tumor size (1000 cells).
  EXPECT_LT(necrotic_early[0] / n[0], 50.0);
  EXPECT_LT(necrotic_early[1] / n[1], 50.0);
}

TEST(BiologicalSim, Deterministic) {
  BiologicalSimOptions options;
  options.num_simulations = 30;
  const Dataset a = MakeBiologicalDataset(options);
  const Dataset b = MakeBiologicalDataset(options);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.instance(5).at(0, 10), b.instance(5).at(0, 10));
}

TEST(MaritimeSim, PaperShape) {
  MaritimeSimOptions options;
  options.num_windows = 300;
  const Dataset d = MakeMaritimeDataset(options);
  EXPECT_EQ(d.size(), 300u);
  EXPECT_EQ(d.NumVariables(), 7u);
  EXPECT_EQ(d.MaxLength(), 30u);
  const auto counts = d.ClassCounts();
  // positive fraction ~0.192.
  EXPECT_NEAR(static_cast<double>(counts.at(1)) / 300.0, 0.192, 0.01);
}

TEST(MaritimeSim, LabelsMatchPolygonRule) {
  MaritimeSimOptions options;
  options.num_windows = 200;
  const Dataset d = MakeMaritimeDataset(options);
  for (size_t i = 0; i < d.size(); ++i) {
    const TimeSeries& ts = d.instance(i);
    const double lon = ts.at(2, ts.length() - 1);
    const double lat = ts.at(3, ts.length() - 1);
    EXPECT_EQ(InsidePolygon(PortPolygon(), lon, lat), d.label(i) == 1) << i;
  }
}

TEST(MaritimeSim, TimestampsIncreaseAndIdsConstant) {
  MaritimeSimOptions options;
  options.num_windows = 50;
  const Dataset d = MakeMaritimeDataset(options);
  for (size_t i = 0; i < d.size(); ++i) {
    const TimeSeries& ts = d.instance(i);
    for (size_t t = 1; t < ts.length(); ++t) {
      EXPECT_GT(ts.at(0, t), ts.at(0, t - 1));
      EXPECT_DOUBLE_EQ(ts.at(1, t), ts.at(1, 0));
    }
  }
}

TEST(InsidePolygonFn, BasicSquare) {
  const std::vector<std::pair<double, double>> square{
      {0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_TRUE(InsidePolygon(square, 0.5, 0.5));
  EXPECT_FALSE(InsidePolygon(square, 1.5, 0.5));
  EXPECT_FALSE(InsidePolygon(square, -0.1, 0.5));
}

TEST(UcrLike, AllTenSpecsPresent) {
  EXPECT_EQ(UcrLikeSpecs().size(), 10u);
  std::set<std::string> names;
  for (const auto& spec : UcrLikeSpecs()) names.insert(spec.name);
  EXPECT_EQ(names.size(), 10u);
  EXPECT_TRUE(names.count("HouseTwenty"));
  EXPECT_TRUE(names.count("PLAID"));
}

TEST(UcrLike, FindByNameWorks) {
  auto spec = FindUcrLikeSpec("PowerCons");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->length, 144u);
  EXPECT_FALSE(FindUcrLikeSpec("NoSuchThing").ok());
}

TEST(UcrLike, GeneratedShapeMatchesSpec) {
  for (const auto& spec : UcrLikeSpecs()) {
    if (spec.height > 500) continue;  // keep the test fast
    const Dataset d = MakeUcrLike(spec, 7);
    EXPECT_EQ(d.size(), spec.height) << spec.name;
    EXPECT_EQ(d.MaxLength(), spec.length) << spec.name;
    EXPECT_EQ(d.NumVariables(), spec.variables) << spec.name;
    EXPECT_EQ(d.NumClasses(), spec.classes) << spec.name;
  }
}

TEST(UcrLike, HeightScaleSubsamples) {
  auto spec = FindUcrLikeSpec("PowerCons");
  ASSERT_TRUE(spec.ok());
  const Dataset d = MakeUcrLike(*spec, 7, 0.25);
  EXPECT_EQ(d.size(), 90u);
}

TEST(UcrLike, ImbalanceReproduced) {
  auto spec = FindUcrLikeSpec("SharePriceIncrease");  // CIR 3
  ASSERT_TRUE(spec.ok());
  const Dataset d = MakeUcrLike(*spec, 7, 0.5);
  EXPECT_NEAR(d.ClassImbalanceRatio(), 3.0, 0.4);
}

TEST(UcrLike, CovLandsNearTarget) {
  auto spec = FindUcrLikeSpec("HouseTwenty");  // target 1.6 (Unstable)
  ASSERT_TRUE(spec.ok());
  const Dataset d = MakeUcrLike(*spec, 7);
  EXPECT_NEAR(d.CoefficientOfVariation(), 1.6, 0.3);
}

TEST(Repository, AllTwelveDatasetsGenerate) {
  RepositoryOptions options;
  options.height_scale = 0.05;  // tiny corpus for the test
  options.maritime_windows = 1200;
  auto corpus = MakeBenchmarkCorpus(options);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->size(), 12u);
}

TEST(Repository, CanonicalCategoriesMatchTable3) {
  RepositoryOptions options;
  options.height_scale = 0.05;
  options.maritime_windows = 1200;
  auto corpus = MakeBenchmarkCorpus(options);
  ASSERT_TRUE(corpus.ok());

  auto find = [&](const std::string& name) -> const BenchmarkDataset& {
    for (const auto& d : *corpus) {
      if (d.canonical_profile.name == name) return d;
    }
    ADD_FAILURE() << name << " missing";
    return (*corpus)[0];
  };

  // Spot-check the Table-3 rows.
  EXPECT_TRUE(find("HouseTwenty").canonical_profile.IsIn(DatasetCategory::kWide));
  EXPECT_TRUE(
      find("HouseTwenty").canonical_profile.IsIn(DatasetCategory::kUnstable));
  EXPECT_TRUE(
      find("HouseTwenty").canonical_profile.IsIn(DatasetCategory::kUnivariate));

  EXPECT_TRUE(find("PLAID").canonical_profile.IsIn(DatasetCategory::kWide));
  EXPECT_TRUE(find("PLAID").canonical_profile.IsIn(DatasetCategory::kLarge));
  EXPECT_TRUE(find("PLAID").canonical_profile.IsIn(DatasetCategory::kImbalanced));
  EXPECT_TRUE(find("PLAID").canonical_profile.IsIn(DatasetCategory::kMulticlass));

  EXPECT_TRUE(find("Maritime").canonical_profile.IsIn(DatasetCategory::kLarge));
  EXPECT_TRUE(
      find("Maritime").canonical_profile.IsIn(DatasetCategory::kMultivariate));

  EXPECT_TRUE(
      find("Biological").canonical_profile.IsIn(DatasetCategory::kImbalanced));
  EXPECT_TRUE(
      find("Biological").canonical_profile.IsIn(DatasetCategory::kMultivariate));

  EXPECT_TRUE(
      find("PowerCons").canonical_profile.IsIn(DatasetCategory::kCommon));
  EXPECT_TRUE(
      find("DodgerLoopGame").canonical_profile.IsIn(DatasetCategory::kCommon));

  EXPECT_TRUE(
      find("BasicMotions").canonical_profile.IsIn(DatasetCategory::kMulticlass));
  EXPECT_TRUE(find("BasicMotions")
                  .canonical_profile.IsIn(DatasetCategory::kMultivariate));

  EXPECT_TRUE(find("LSST").canonical_profile.IsIn(DatasetCategory::kLarge));
  EXPECT_TRUE(find("LSST").canonical_profile.IsIn(DatasetCategory::kMulticlass));
  EXPECT_TRUE(
      find("SharePriceIncrease").canonical_profile.IsIn(DatasetCategory::kLarge));
}

TEST(Repository, ObservationPeriodsPropagated) {
  RepositoryOptions options;
  options.height_scale = 0.05;
  options.maritime_windows = 1200;
  auto maritime = MakeBenchmarkDataset("Maritime", options);
  ASSERT_TRUE(maritime.ok());
  EXPECT_DOUBLE_EQ(maritime->data.observation_period_seconds(), 60.0);
  auto house = MakeBenchmarkDataset("HouseTwenty", options);
  ASSERT_TRUE(house.ok());
  EXPECT_DOUBLE_EQ(house->data.observation_period_seconds(), 8.0);
}

TEST(Repository, UnknownNameFails) {
  EXPECT_FALSE(MakeBenchmarkDataset("Nope").ok());
}

}  // namespace
}  // namespace etsc
