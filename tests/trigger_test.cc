// Tests of the classifier/trigger seam (DESIGN.md sec 15): registry
// behaviour, per-trigger fit determinism, halt monotonicity, Save/LoadFitted
// round-trips through ComposedEarlyClassifier, golden equivalence of the
// legacy monoliths against their composed-spec twins (serial and at pool
// width 8), and the model cache's demotion of pre-bump ETSCMODL artifacts.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "algos/base_classifiers.h"
#include "algos/prob_threshold.h"
#include "algos/registrations.h"
#include "core/composed.h"
#include "core/counters.h"
#include "core/evaluation.h"
#include "core/model_cache.h"
#include "core/parallel.h"
#include "core/registry.h"
#include "core/serialize.h"
#include "core/trigger.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

using testing::MakeToyDataset;

/// One spec per registered trigger, each over a cheap base; the base half of
/// self-contained triggers (ects-mpl, eco-cost) is created but unused.
const std::vector<std::string>& AllTriggerSpecs() {
  static const auto* kSpecs = new std::vector<std::string>{
      "gbdt+prob",       "gbdt+ecec-ratio", "weasel+teaser-gate",
      "1nn+ects-mpl",    "gbdt+eco-cost",   "gbdt+strut-search"};
  return *kSpecs;
}

std::vector<EarlyPrediction> PredictAll(const EarlyClassifier& model,
                                        const Dataset& test) {
  std::vector<EarlyPrediction> out;
  for (size_t i = 0; i < test.size(); ++i) {
    auto pred = model.PredictEarly(test.instance(i));
    EXPECT_TRUE(pred.ok()) << model.name() << ": " << pred.status().ToString();
    out.push_back(pred.ok() ? *pred : EarlyPrediction{});
  }
  return out;
}

void ExpectSamePredictions(const std::vector<EarlyPrediction>& a,
                           const std::vector<EarlyPrediction>& b,
                           const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << what << " instance " << i;
    EXPECT_EQ(a[i].prefix_length, b[i].prefix_length)
        << what << " instance " << i;
    EXPECT_EQ(a[i].confidence, b[i].confidence) << what << " instance " << i;
  }
}

// ---------------------------------------------------------------------------
// Registries (satellite: structured NotFound, both namespaces)
// ---------------------------------------------------------------------------

TEST(TriggerRegistryTest, UnknownTriggerListsRegisteredNames) {
  RegisterBuiltinClassifiers();
  auto created = TriggerRegistry::Global().Create("no-such-trigger");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kNotFound);
  const std::string message = created.status().ToString();
  EXPECT_NE(message.find("registered triggers:"), std::string::npos) << message;
  EXPECT_NE(message.find("prob"), std::string::npos) << message;
  EXPECT_NE(message.find("ects-mpl"), std::string::npos) << message;
}

TEST(TriggerRegistryTest, UnknownBaseListsRegisteredNames) {
  RegisterBuiltinClassifiers();
  auto created = BaseClassifierRegistry::Global().Create("no-such-base");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kNotFound);
  const std::string message = created.status().ToString();
  EXPECT_NE(message.find("registered base classifiers:"), std::string::npos)
      << message;
  EXPECT_NE(message.find("weasel"), std::string::npos) << message;
}

TEST(TriggerRegistryTest, AllSixTriggersAndSevenBasesRegistered) {
  RegisterBuiltinClassifiers();
  EXPECT_EQ(TriggerRegistry::Global().Names().size(), 6u);
  EXPECT_EQ(BaseClassifierRegistry::Global().Names().size(), 7u);
  for (const std::string& spec : AllTriggerSpecs()) {
    auto model = MakeComposedFromSpec(spec);
    ASSERT_TRUE(model.ok()) << spec << ": " << model.status().ToString();
    EXPECT_EQ((*model)->name(), spec);
  }
}

TEST(TriggerRegistryTest, ComposedSpecErrorsAreStructured) {
  RegisterBuiltinClassifiers();
  auto bad_trigger = MakeComposedFromSpec("weasel+nope");
  ASSERT_FALSE(bad_trigger.ok());
  EXPECT_EQ(bad_trigger.status().code(), StatusCode::kNotFound);
  EXPECT_NE(bad_trigger.status().ToString().find("registered triggers:"),
            std::string::npos);
  auto bad_base = MakeComposedFromSpec("nope+prob");
  ASSERT_FALSE(bad_base.ok());
  EXPECT_EQ(bad_base.status().code(), StatusCode::kNotFound);
  EXPECT_NE(bad_base.status().ToString().find("registered base classifiers:"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-trigger: fit determinism
// ---------------------------------------------------------------------------

TEST(TriggerFitTest, FitIsDeterministicPerTrigger) {
  RegisterBuiltinClassifiers();
  const Dataset data = MakeToyDataset(12, 32);
  const Dataset test = MakeToyDataset(6, 32, 0.0, /*seed=*/11);
  for (const std::string& spec : AllTriggerSpecs()) {
    auto first = MakeComposedFromSpec(spec);
    auto second = MakeComposedFromSpec(spec);
    ASSERT_TRUE(first.ok() && second.ok()) << spec;
    ASSERT_TRUE((*first)->Fit(data).ok()) << spec;
    ASSERT_TRUE((*second)->Fit(data).ok()) << spec;
    // Two fits from the same options and data must agree byte-for-byte in
    // their serialized state, not just in their predictions.
    std::ostringstream bytes_first, bytes_second;
    ASSERT_TRUE((*first)->Save(bytes_first).ok()) << spec;
    ASSERT_TRUE((*second)->Save(bytes_second).ok()) << spec;
    EXPECT_EQ(bytes_first.str(), bytes_second.str()) << spec;
    ExpectSamePredictions(PredictAll(**first, test), PredictAll(**second, test),
                          spec);
  }
}

// ---------------------------------------------------------------------------
// Halt monotonicity (prob trigger: a stricter threshold never halts earlier)
// ---------------------------------------------------------------------------

TEST(TriggerHaltTest, ProbTriggerHaltIsMonotoneInThreshold) {
  const Dataset data = MakeToyDataset(12, 32);
  const Dataset test = MakeToyDataset(6, 32, 0.0, /*seed=*/11);
  auto composed_at = [&](double threshold) {
    ProbTriggerOptions options;
    options.threshold = threshold;
    auto trigger = std::make_unique<ProbTrigger>(options);
    const ComposedOptions composed = trigger->DefaultComposedOptions();
    return std::make_unique<ComposedEarlyClassifier>(
        "gbdt+prob", std::make_unique<GbdtSeriesClassifier>(),
        std::move(trigger), composed);
  };
  auto lax = composed_at(0.55);
  auto strict = composed_at(0.95);
  ASSERT_TRUE(lax->Fit(data).ok());
  ASSERT_TRUE(strict->Fit(data).ok());
  const auto lax_preds = PredictAll(*lax, test);
  const auto strict_preds = PredictAll(*strict, test);
  for (size_t i = 0; i < test.size(); ++i) {
    // With consecutive=1 a checkpoint accepted at 0.95 is accepted at 0.55
    // too, so the lax run can never consume a longer prefix.
    EXPECT_LE(lax_preds[i].prefix_length, strict_preds[i].prefix_length)
        << "instance " << i;
  }
}

// ---------------------------------------------------------------------------
// Per-trigger: Save/LoadFitted round-trip through ComposedEarlyClassifier
// ---------------------------------------------------------------------------

TEST(TriggerSerializationTest, SaveLoadFittedRoundTripPerTrigger) {
  RegisterBuiltinClassifiers();
  const Dataset data = MakeToyDataset(12, 32);
  const Dataset test = MakeToyDataset(6, 32, 0.0, /*seed=*/11);
  for (const std::string& spec : AllTriggerSpecs()) {
    auto fitted = MakeComposedFromSpec(spec);
    ASSERT_TRUE(fitted.ok()) << spec;
    ASSERT_TRUE((*fitted)->Fit(data).ok()) << spec;
    std::stringstream stream;
    ASSERT_TRUE((*fitted)->Save(stream).ok()) << spec;
    auto restored = MakeComposedFromSpec(spec);
    ASSERT_TRUE(restored.ok()) << spec;
    const Status loaded = (*restored)->LoadFitted(stream);
    ASSERT_TRUE(loaded.ok()) << spec << ": " << loaded.ToString();
    ExpectSamePredictions(PredictAll(**fitted, test),
                          PredictAll(**restored, test), spec);
  }
}

// ---------------------------------------------------------------------------
// Golden equivalence: legacy monolith == composed-spec twin, bit-identical
// EvalScores, serial and at pool width 8
// ---------------------------------------------------------------------------

struct GoldenPair {
  const char* legacy;  // ClassifierRegistry name, default options
  const char* spec;    // '<base>+<trigger>' twin with matching defaults
};

const std::vector<GoldenPair>& GoldenPairs() {
  static const auto* kPairs = new std::vector<GoldenPair>{
      {"ecec", "weasel+ecec-ratio"},
      {"ects", "1nn+ects-mpl"},
      {"economy-k", "gbdt+eco-cost"},
      {"teaser", "weasel+teaser-gate"},
      {"prob-threshold", "minirocket-logistic+prob"},
      {"s-weasel", "adaptive-weasel+strut-search"},
  };
  return *kPairs;
}

EvaluationResult EvaluateToy(const Dataset& data,
                             const EarlyClassifier& prototype) {
  EvaluationOptions options;
  options.num_folds = 2;
  // The voting wrapper multiplies every fit by its ensemble width and wraps
  // legacy and twin identically; skip it to keep the matrix fast.
  options.wrap_univariate_with_voting = false;
  return CrossValidate(data, prototype, options);
}

void ExpectSameScores(const EvaluationResult& legacy,
                      const EvaluationResult& twin, const std::string& what) {
  ASSERT_EQ(legacy.folds.size(), twin.folds.size()) << what;
  for (size_t f = 0; f < legacy.folds.size(); ++f) {
    ASSERT_TRUE(legacy.folds[f].trained) << what << " fold " << f;
    ASSERT_TRUE(twin.folds[f].trained) << what << " fold " << f;
    const EvalScores& a = legacy.folds[f].scores;
    const EvalScores& b = twin.folds[f].scores;
    EXPECT_EQ(a.accuracy, b.accuracy) << what << " fold " << f;
    EXPECT_EQ(a.f1, b.f1) << what << " fold " << f;
    EXPECT_EQ(a.earliness, b.earliness) << what << " fold " << f;
    EXPECT_EQ(a.harmonic_mean, b.harmonic_mean) << what << " fold " << f;
  }
}

TEST(GoldenEquivalenceTest, LegacyEqualsComposedTwinSerialAndParallel) {
  RegisterBuiltinClassifiers();
  const Dataset data = MakeToyDataset(12, 32);
  for (const GoldenPair& pair : GoldenPairs()) {
    auto legacy = ClassifierRegistry::Global().Create(pair.legacy);
    auto twin = MakeComposedFromSpec(pair.spec);
    ASSERT_TRUE(legacy.ok()) << pair.legacy;
    ASSERT_TRUE(twin.ok()) << pair.spec;

    SetMaxParallelism(1);
    const EvaluationResult legacy_serial = EvaluateToy(data, **legacy);
    const EvaluationResult twin_serial = EvaluateToy(data, **twin);
    SetMaxParallelism(8);
    const EvaluationResult legacy_parallel = EvaluateToy(data, **legacy);
    const EvaluationResult twin_parallel = EvaluateToy(data, **twin);
    SetMaxParallelism(0);  // restore the ETSC_THREADS / hardware default

    const std::string what =
        std::string(pair.legacy) + " vs " + pair.spec;
    ExpectSameScores(legacy_serial, twin_serial, what + " (serial)");
    ExpectSameScores(legacy_parallel, twin_parallel, what + " (width 8)");
    ExpectSameScores(legacy_serial, legacy_parallel,
                     what + " (legacy serial vs width 8)");
  }
}

// ---------------------------------------------------------------------------
// Model cache: pre-bump (v1) artifacts demote to misses, never crash
// ---------------------------------------------------------------------------

class StaleFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/etsc_stale_cache_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    directory_ = tmpl;
  }
  void TearDown() override {
    // Entries the tests leave behind (best effort; the dir name is unique).
    std::remove((directory_ + "/leftover").c_str());
    ::rmdir(directory_.c_str());
  }
  std::string directory_;
};

/// Overwrites the u32 format_version (offset 8, after the 8-byte magic) of an
/// ETSCMODL file in place, little-endian.
void PatchFormatVersion(const std::string& path, uint32_t version) {
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.is_open()) << path;
  file.seekp(8);
  const char bytes[4] = {static_cast<char>(version & 0xff),
                         static_cast<char>((version >> 8) & 0xff),
                         static_cast<char>((version >> 16) & 0xff),
                         static_cast<char>((version >> 24) & 0xff)};
  file.write(bytes, 4);
  ASSERT_TRUE(file.good()) << path;
}

bool FileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

TEST_F(StaleFormatTest, PreBumpArtifactIsDemotedToMissAndEvicted) {
  RegisterBuiltinClassifiers();
  const Dataset data = MakeToyDataset(10, 24);
  auto model = MakeComposedFromSpec("gbdt+prob");
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(data).ok());

  ModelCache cache(directory_);
  ModelCacheKey key;
  key.config_fingerprint = (*model)->config_fingerprint();
  key.dataset_fingerprint = data.Fingerprint();
  key.num_folds = 1;
  key.seed = 7;
  ASSERT_TRUE(cache.Store(key, **model).ok());
  const std::string path = cache.EntryPath(key, (*model)->name());
  ASSERT_TRUE(FileExists(path));

  // Rewrite the entry as if a pre-bump build had written it.
  ASSERT_GE(kSerializeFormatVersion, 2u);
  PatchFormatVersion(path, 1);

  Counter& demotions =
      MetricRegistry::Global().counter("model_cache.stale_format_demotions");
  Counter& misses = MetricRegistry::Global().counter("model_cache.misses");
  const uint64_t demotions_before = demotions.value();
  const uint64_t misses_before = misses.value();

  auto fresh = MakeComposedFromSpec("gbdt+prob");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(cache.TryLoad(key, fresh->get()));
  EXPECT_EQ(demotions.value(), demotions_before + 1);
  EXPECT_EQ(misses.value(), misses_before + 1);
  // The stale entry is evicted so the refit's store replaces it.
  EXPECT_FALSE(FileExists(path));

  // The refit-and-store path fully recovers: the cache serves the new entry.
  ASSERT_TRUE((*fresh)->Fit(data).ok());
  ASSERT_TRUE(cache.Store(key, **fresh).ok());
  auto reloaded = MakeComposedFromSpec("gbdt+prob");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(cache.TryLoad(key, reloaded->get()));
  EXPECT_EQ(demotions.value(), demotions_before + 1);  // demotion was one-off
  std::remove(path.c_str());
}

TEST_F(StaleFormatTest, NewerFormatArtifactIsAMissNotACrash) {
  RegisterBuiltinClassifiers();
  const Dataset data = MakeToyDataset(10, 24);
  auto model = MakeComposedFromSpec("gbdt+prob");
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(data).ok());

  ModelCache cache(directory_);
  ModelCacheKey key;
  key.config_fingerprint = (*model)->config_fingerprint();
  key.dataset_fingerprint = data.Fingerprint();
  key.num_folds = 1;
  key.seed = 7;
  ASSERT_TRUE(cache.Store(key, **model).ok());
  const std::string path = cache.EntryPath(key, (*model)->name());
  PatchFormatVersion(path, kSerializeFormatVersion + 1);

  // A future build's entry: the versioning policy rejects it in LoadFitted
  // (InvalidArgument), which the cache treats as a corrupt eviction + miss.
  auto fresh = MakeComposedFromSpec("gbdt+prob");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(cache.TryLoad(key, fresh->get()));
  EXPECT_FALSE(FileExists(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace etsc
