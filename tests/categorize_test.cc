#include "core/categorize.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

Dataset UniformDataset(size_t n, size_t length, size_t variables,
                       size_t classes, double offset) {
  Dataset d("u", {}, {});
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::vector<double>> channels(variables);
    for (auto& c : channels) {
      c.resize(length);
      for (double& v : c) v = offset + rng.Gaussian(0.0, 1.0);
    }
    d.Add(TimeSeries::FromChannels(std::move(channels)).value(),
          static_cast<int>(i % classes));
  }
  return d;
}

TEST(Categorize, CommonDatasetGetsOnlyCommonAndDimensionality) {
  // Small, short, stable (big offset -> low CoV), balanced, binary.
  Dataset d = UniformDataset(50, 20, 1, 2, 100.0);
  const DatasetProfile profile = Categorize(d);
  EXPECT_TRUE(profile.IsIn(DatasetCategory::kCommon));
  EXPECT_TRUE(profile.IsIn(DatasetCategory::kUnivariate));
  EXPECT_FALSE(profile.IsIn(DatasetCategory::kWide));
  EXPECT_FALSE(profile.IsIn(DatasetCategory::kLarge));
  EXPECT_FALSE(profile.IsIn(DatasetCategory::kUnstable));
  EXPECT_FALSE(profile.IsIn(DatasetCategory::kImbalanced));
  EXPECT_FALSE(profile.IsIn(DatasetCategory::kMulticlass));
}

TEST(Categorize, WideThreshold) {
  // Sec 5.4: length > 1300 -> Wide.
  Dataset wide = UniformDataset(5, 1301, 1, 2, 100.0);
  EXPECT_TRUE(Categorize(wide).IsIn(DatasetCategory::kWide));
  Dataset narrow = UniformDataset(5, 1300, 1, 2, 100.0);
  EXPECT_FALSE(Categorize(narrow).IsIn(DatasetCategory::kWide));
}

TEST(Categorize, LargeThreshold) {
  Dataset large = UniformDataset(1001, 5, 1, 2, 100.0);
  EXPECT_TRUE(Categorize(large).IsIn(DatasetCategory::kLarge));
  Dataset small = UniformDataset(1000, 5, 1, 2, 100.0);
  EXPECT_FALSE(Categorize(small).IsIn(DatasetCategory::kLarge));
}

TEST(Categorize, UnstableByCoV) {
  // Zero-mean noise has a huge CoV.
  Dataset unstable = UniformDataset(20, 50, 1, 2, 0.0);
  EXPECT_TRUE(Categorize(unstable).IsIn(DatasetCategory::kUnstable));
}

TEST(Categorize, ImbalancedByCir) {
  Dataset d("imb", {}, {});
  Rng rng(6);
  for (int i = 0; i < 9; ++i) {
    d.Add(TimeSeries::Univariate({100.0 + rng.Gaussian(0, 1)}), 0);
  }
  for (int i = 0; i < 3; ++i) {
    d.Add(TimeSeries::Univariate({100.0 + rng.Gaussian(0, 1)}), 1);
  }
  // CIR = 3 > 1.73.
  EXPECT_TRUE(Categorize(d).IsIn(DatasetCategory::kImbalanced));
}

TEST(Categorize, MulticlassAboveTwo) {
  Dataset d = UniformDataset(30, 10, 1, 3, 100.0);
  EXPECT_TRUE(Categorize(d).IsIn(DatasetCategory::kMulticlass));
}

TEST(Categorize, MultivariateFlag) {
  Dataset d = UniformDataset(10, 10, 4, 2, 100.0);
  const DatasetProfile profile = Categorize(d);
  EXPECT_TRUE(profile.IsIn(DatasetCategory::kMultivariate));
  EXPECT_FALSE(profile.IsIn(DatasetCategory::kUnivariate));
  EXPECT_EQ(profile.num_variables, 4u);
}

TEST(Categorize, CommonExcludedWhenAnyPropertyHolds) {
  Dataset d = UniformDataset(30, 10, 1, 3, 100.0);  // multiclass
  EXPECT_FALSE(Categorize(d).IsIn(DatasetCategory::kCommon));
}

TEST(Categorize, ProfileStatisticsFilled) {
  Dataset d = UniformDataset(12, 34, 2, 3, 50.0);
  const DatasetProfile profile = Categorize(d);
  EXPECT_EQ(profile.height, 12u);
  EXPECT_EQ(profile.length, 34u);
  EXPECT_EQ(profile.num_classes, 3u);
  EXPECT_GT(profile.cov, 0.0);
  EXPECT_GE(profile.cir, 1.0);
}

TEST(Categorize, AssignCategoriesRecomputes) {
  Dataset d = UniformDataset(10, 10, 1, 2, 100.0);
  DatasetProfile profile = Categorize(d);
  EXPECT_FALSE(profile.IsIn(DatasetCategory::kLarge));
  profile.height = 5000;  // pretend the canonical dataset is big
  AssignCategories(&profile);
  EXPECT_TRUE(profile.IsIn(DatasetCategory::kLarge));
  EXPECT_FALSE(profile.IsIn(DatasetCategory::kCommon));
}

TEST(Categorize, CategoryNamesMatchTable3Headers) {
  EXPECT_EQ(DatasetCategoryName(DatasetCategory::kWide), "Wide");
  EXPECT_EQ(DatasetCategoryName(DatasetCategory::kCommon), "Common");
  EXPECT_EQ(DatasetCategoryName(DatasetCategory::kMultivariate), "Multivariate");
  EXPECT_EQ(AllDatasetCategories().size(), 8u);
}

}  // namespace
}  // namespace etsc
