// Tests for the extensibility registry (paper Sec. 5.5) and the univariate ->
// multivariate voting wrapper (Sec. 6.1).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "algos/registrations.h"
#include "core/registry.h"
#include "core/voting.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

/// Minimal early classifier used to probe the wrappers: predicts the majority
/// training label after a fixed number of points.
class StubEarly : public EarlyClassifier {
 public:
  explicit StubEarly(size_t consume = 3, int forced_label = -999)
      : consume_(consume), forced_label_(forced_label) {}

  Status Fit(const Dataset& train) override {
    if (train.empty()) return Status::InvalidArgument("stub: empty");
    fitted_vars_ = train.NumVariables();
    if (forced_label_ != -999) {
      label_ = forced_label_;
      return Status::OK();
    }
    const auto counts = train.ClassCounts();
    size_t best = 0;
    for (const auto& [l, c] : counts) {
      if (c > best) {
        best = c;
        label_ = l;
      }
    }
    return Status::OK();
  }
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override {
    return EarlyPrediction{label_, std::min(consume_, series.length())};
  }
  std::string name() const override { return "stub"; }
  bool SupportsMultivariate() const override { return false; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<StubEarly>(consume_, forced_label_);
  }

  size_t fitted_vars() const { return fitted_vars_; }

 private:
  size_t consume_;
  int forced_label_;
  int label_ = 0;
  size_t fitted_vars_ = 0;
};

TEST(Registry, BuiltinAlgorithmsRegistered) {
  RegisterBuiltinClassifiers();
  auto& registry = ClassifierRegistry::Global();
  for (const char* name : {"ecec", "economy-k", "ects", "edsc", "teaser",
                           "s-weasel", "s-mini", "s-mlstm"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
}

TEST(Registry, CreateInstantiates) {
  RegisterBuiltinClassifiers();
  auto model = ClassifierRegistry::Global().Create("ects");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->name(), "ECTS");
}

TEST(Registry, UnknownNameIsNotFound) {
  RegisterBuiltinClassifiers();
  auto model = ClassifierRegistry::Global().Create("definitely-not-there");
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kNotFound);
  // The error is actionable: it names the bad input and lists what IS
  // registered, so a caller can fix a typo without reading the source.
  EXPECT_NE(model.status().message().find("definitely-not-there"),
            std::string::npos);
  EXPECT_NE(model.status().message().find("ects"), std::string::npos);
}

TEST(Registry, DuplicateRegistrationRejected) {
  ClassifierRegistry registry;
  ASSERT_TRUE(
      registry.Register("x", [] { return std::make_unique<StubEarly>(); }).ok());
  EXPECT_FALSE(
      registry.Register("x", [] { return std::make_unique<StubEarly>(); }).ok());
}

TEST(Registry, NamesSorted) {
  ClassifierRegistry registry;
  ASSERT_TRUE(
      registry.Register("b", [] { return std::make_unique<StubEarly>(); }).ok());
  ASSERT_TRUE(
      registry.Register("a", [] { return std::make_unique<StubEarly>(); }).ok());
  const auto names = registry.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(Voting, TrainsOneVoterPerVariable) {
  Dataset mv = testing::MakeToyMultivariate(5, 10, 2);
  VotingEarlyClassifier voting(std::make_unique<StubEarly>());
  ASSERT_TRUE(voting.Fit(mv).ok());
  EXPECT_EQ(voting.num_voters(), mv.NumVariables());
}

TEST(Voting, ReportsWorstEarliness) {
  // Stub consumes 3 points per voter, so the vote reports 3.
  Dataset mv = testing::MakeToyMultivariate(5, 10, 2);
  VotingEarlyClassifier voting(std::make_unique<StubEarly>(3));
  ASSERT_TRUE(voting.Fit(mv).ok());
  auto pred = voting.PredictEarly(mv.instance(0));
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->prefix_length, 3u);
}

TEST(Voting, RejectsVariableMismatch) {
  Dataset mv = testing::MakeToyMultivariate(5, 10, 2);
  VotingEarlyClassifier voting(std::make_unique<StubEarly>());
  ASSERT_TRUE(voting.Fit(mv).ok());
  auto pred = voting.PredictEarly(TimeSeries::Univariate({1, 2, 3}));
  EXPECT_FALSE(pred.ok());
}

TEST(Voting, PredictBeforeFitFails) {
  VotingEarlyClassifier voting(std::make_unique<StubEarly>());
  auto pred = voting.PredictEarly(TimeSeries::Univariate({1.0}));
  EXPECT_FALSE(pred.ok());
  EXPECT_EQ(pred.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Voting, NameDerivedFromPrototype) {
  VotingEarlyClassifier voting(std::make_unique<StubEarly>());
  EXPECT_EQ(voting.name(), "stub+vote");
}

TEST(WrapForDatasetFn, WrapsOnlyWhenNeeded) {
  Dataset uni = testing::MakeToyDataset(4, 10);
  Dataset mv = testing::MakeToyMultivariate(4, 10, 2);

  auto plain = WrapForDataset(std::make_unique<StubEarly>(), uni);
  EXPECT_EQ(plain->name(), "stub");

  auto wrapped = WrapForDataset(std::make_unique<StubEarly>(), mv);
  EXPECT_EQ(wrapped->name(), "stub+vote");
}

TEST(Voting, CloneUntrainedProducesFreshWrapper) {
  VotingEarlyClassifier voting(std::make_unique<StubEarly>());
  auto clone = voting.CloneUntrained();
  EXPECT_EQ(clone->name(), "stub+vote");
  // A clone is untrained.
  auto pred = clone->PredictEarly(TimeSeries::Univariate({1.0}));
  EXPECT_FALSE(pred.ok());
}

}  // namespace
}  // namespace etsc
