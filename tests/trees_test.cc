// CART regression trees and gradient boosting (ECONOMY-K's base classifier).

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"

namespace etsc {
namespace {

TEST(RegressionTree, FitsAStepFunction) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (double v = 0.0; v < 10.0; v += 0.5) {
    x.push_back({v});
    y.push_back(v < 5.0 ? -1.0 : 1.0);
  }
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_NEAR(tree.Predict({2.0}), -1.0, 1e-9);
  EXPECT_NEAR(tree.Predict({8.0}), 1.0, 1e-9);
}

TEST(RegressionTree, DepthZeroIsMean) {
  RegressionTreeOptions options;
  options.max_depth = 0;
  RegressionTree tree(options);
  ASSERT_TRUE(tree.Fit({{0.0}, {1.0}}, {2.0, 4.0}).ok());
  EXPECT_NEAR(tree.Predict({0.0}), 3.0, 1e-9);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(RegressionTree, MinSamplesLeafRespected) {
  RegressionTreeOptions options;
  options.min_samples_leaf = 3;
  RegressionTree tree(options);
  // Only 4 samples: a split would leave a side with < 3.
  ASSERT_TRUE(tree.Fit({{0.0}, {1.0}, {2.0}, {3.0}}, {0, 0, 1, 1}).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(RegressionTree, HessianWeightedLeaves) {
  // Leaf value = sum(g) / sum(h): with h = 2 the leaf halves.
  RegressionTreeOptions options;
  options.max_depth = 0;
  RegressionTree tree(options);
  ASSERT_TRUE(tree.Fit({{0.0}}, {4.0}, {2.0}).ok());
  EXPECT_NEAR(tree.Predict({0.0}), 2.0, 1e-9);
}

TEST(RegressionTree, MultiFeatureSplitPicksInformative) {
  // Feature 0 is noise-free signal, feature 1 is constant.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i), 7.0});
    y.push_back(i < 10 ? 0.0 : 10.0);
  }
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_NEAR(tree.Predict({3.0, 7.0}), 0.0, 1e-9);
  EXPECT_NEAR(tree.Predict({15.0, 7.0}), 10.0, 1e-9);
}

TEST(RegressionTree, InputValidation) {
  RegressionTree tree;
  EXPECT_FALSE(tree.Fit({}, {}).ok());
  EXPECT_FALSE(tree.Fit({{1.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(tree.Fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(tree.Fit({{1.0}}, {1.0}, {1.0, 2.0}).ok());
}

TEST(Gbdt, LearnsXorLikePattern) {
  // Non-linear pattern a single linear model cannot fit.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-1, 1);
    const double b = rng.Uniform(-1, 1);
    x.push_back({a, b});
    y.push_back(a * b > 0 ? 1 : 0);
  }
  GbdtClassifier model;
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  size_t correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    auto pred = model.Predict(x[i]);
    ASSERT_TRUE(pred.ok());
    if (*pred == y[i]) ++correct;
  }
  EXPECT_GE(static_cast<double>(correct) / x.size(), 0.9);
}

TEST(Gbdt, MulticlassProbabilitiesSumToOne) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) {
      x.push_back({static_cast<double>(c), static_cast<double>(i) * 0.01});
      y.push_back(c + 5);  // non-contiguous labels
    }
  }
  GbdtClassifier model;
  ASSERT_TRUE(model.Fit(x, y, nullptr).ok());
  EXPECT_EQ(model.class_labels(), (std::vector<int>{5, 6, 7}));
  auto proba = model.PredictProba({1.0, 0.05});
  ASSERT_TRUE(proba.ok());
  double total = 0.0;
  for (double p : *proba) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  auto pred = model.Predict({2.0, 0.0});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(*pred, 7);
}

TEST(Gbdt, SingleClassPredictsIt) {
  GbdtClassifier model;
  ASSERT_TRUE(model.Fit({{0.0}, {1.0}}, {3, 3}, nullptr).ok());
  auto pred = model.Predict({0.5});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(*pred, 3);
}

TEST(Gbdt, SubsampleRequiresRng) {
  GbdtOptions options;
  options.subsample = 0.5;
  GbdtClassifier model(options);
  EXPECT_FALSE(model.Fit({{0.0}}, {0}, nullptr).ok());
}

TEST(Gbdt, PredictBeforeFitFails) {
  GbdtClassifier model;
  EXPECT_FALSE(model.Predict({0.0}).ok());
}

TEST(Gbdt, SubsamplingStillLearns) {
  GbdtOptions options;
  options.subsample = 0.7;
  options.num_rounds = 30;
  GbdtClassifier model(options);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(22);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.Uniform(-1, 1);
    x.push_back({v});
    y.push_back(v > 0 ? 1 : 0);
  }
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  auto pred = model.Predict({0.8});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(*pred, 1);
}

}  // namespace
}  // namespace etsc
