// DFT / sliding (momentary) Fourier transform, symbolic Fourier approximation
// and chi² feature selection — the WEASEL substrate.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numbers>

#include "core/rng.h"
#include "ml/chi2.h"
#include "ml/fourier.h"
#include "ml/sfa.h"

namespace etsc {
namespace {

TEST(Dft, DcCoefficientIsMean) {
  const auto coeffs = DftCoefficients({1.0, 2.0, 3.0, 4.0}, 1, false);
  ASSERT_EQ(coeffs.size(), 2u);
  EXPECT_NEAR(coeffs[0], 2.5, 1e-12);  // re of coefficient 0 = mean
  EXPECT_NEAR(coeffs[1], 0.0, 1e-12);
}

TEST(Dft, PureSineConcentratesInOneBin) {
  const size_t n = 32;
  std::vector<double> x(n);
  for (size_t t = 0; t < n; ++t) {
    x[t] = std::sin(2.0 * std::numbers::pi * 3.0 * t / n);
  }
  const auto coeffs = DftCoefficients(x, 6, false);
  // Magnitude at coefficient 3 is 0.5 (half amplitude); others near zero.
  for (size_t k = 0; k < 6; ++k) {
    const double mag = std::hypot(coeffs[2 * k], coeffs[2 * k + 1]);
    if (k == 3) {
      EXPECT_NEAR(mag, 0.5, 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9);
    }
  }
}

TEST(Dft, DropFirstSkipsDc) {
  const std::vector<double> x{5.0, 5.0, 5.0, 5.0};
  const auto with_dc = DftCoefficients(x, 1, false);
  const auto without_dc = DftCoefficients(x, 1, true);
  EXPECT_NEAR(with_dc[0], 5.0, 1e-12);
  EXPECT_NEAR(without_dc[0], 0.0, 1e-12);
}

TEST(SlidingDftFn, MatchesDirectComputation) {
  Rng rng(41);
  std::vector<double> series(50);
  for (double& v : series) v = rng.Gaussian();
  const size_t w = 16;
  const auto sliding = SlidingDft(series, w, 4, true);
  ASSERT_EQ(sliding.size(), series.size() - w + 1);
  for (size_t s = 0; s < sliding.size(); ++s) {
    const std::vector<double> window(series.begin() + s, series.begin() + s + w);
    const auto direct = DftCoefficients(window, 4, true);
    ASSERT_EQ(sliding[s].size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_NEAR(sliding[s][i], direct[i], 1e-8) << "window " << s << " i " << i;
    }
  }
}

TEST(SlidingDftFn, TooShortSeriesYieldsNothing) {
  EXPECT_TRUE(SlidingDft({1.0, 2.0}, 5, 2, false).empty());
}

TEST(Entropy, UniformAndPure) {
  EXPECT_NEAR(LabelEntropy({0, 1}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LabelEntropy({1, 1, 1}), 0.0, 1e-12);
  EXPECT_NEAR(LabelEntropy({}), 0.0, 1e-12);
}

TEST(EquiDepthBinsFn, QuartileBoundaries) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<double>(i));
  const auto bounds = EquiDepthBins(values, 4);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_NEAR(bounds[0], 25.0, 2.0);
  EXPECT_NEAR(bounds[1], 50.0, 2.0);
  EXPECT_NEAR(bounds[2], 75.0, 2.0);
}

TEST(EquiDepthBinsFn, StrictlyIncreasing) {
  const auto bounds = EquiDepthBins({1.0, 1.0, 1.0, 1.0, 1.0}, 4);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(InformationGainBinsFn, FindsClassBoundary) {
  // Class 0 lives below 0, class 1 above: one IG boundary near 0.
  std::vector<std::pair<double, int>> data;
  for (int i = 0; i < 50; ++i) {
    data.emplace_back(-1.0 - 0.01 * i, 0);
    data.emplace_back(1.0 + 0.01 * i, 1);
  }
  const auto bounds = InformationGainBins(data, 2);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_NEAR(bounds[0], 0.0, 0.2);
}

TEST(InformationGainBinsFn, PadsWithEquiDepthWhenPure) {
  // Single class: no informative split exists, equi-depth padding kicks in.
  std::vector<std::pair<double, int>> data;
  for (int i = 0; i < 40; ++i) data.emplace_back(static_cast<double>(i), 0);
  const auto bounds = InformationGainBins(data, 4);
  EXPECT_EQ(bounds.size(), 3u);
}

TEST(Sfa, WordsDifferAcrossClasses) {
  // Windows from two very different generators should map to different words.
  Rng rng(42);
  std::vector<std::vector<double>> windows;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    std::vector<double> low(16), high(16);
    for (size_t t = 0; t < 16; ++t) {
      low[t] = std::sin(2.0 * std::numbers::pi * t / 16.0) + rng.Gaussian(0, 0.05);
      high[t] = 5.0 + std::sin(2.0 * std::numbers::pi * 5.0 * t / 16.0) +
                rng.Gaussian(0, 0.05);
    }
    windows.push_back(std::move(low));
    labels.push_back(0);
    windows.push_back(std::move(high));
    labels.push_back(1);
  }
  Sfa sfa;
  ASSERT_TRUE(sfa.Fit(windows, labels).ok());
  EXPECT_NE(sfa.Word(windows[0]), sfa.Word(windows[1]));
  // The transform is deterministic.
  EXPECT_EQ(sfa.Word(windows[0]), sfa.Word(windows[0]));
  // The leading symbol separates the two classes (their DC levels differ by 5
  // sigma-free units), even if finer symbols wiggle within a class.
  const uint64_t mask = (1ull << sfa.bits_per_symbol()) - 1;
  EXPECT_EQ(sfa.Word(windows[0]) & mask, sfa.Word(windows[2]) & mask);
  EXPECT_NE(sfa.Word(windows[0]) & mask, sfa.Word(windows[1]) & mask);
}

TEST(Sfa, WordFitsInBits) {
  SfaOptions options;
  options.word_length = 6;
  options.alphabet_size = 4;  // 2 bits/symbol -> 12 bits
  Sfa sfa(options);
  std::vector<std::vector<double>> windows(10, std::vector<double>(8, 0.0));
  std::vector<int> labels(10, 0);
  Rng rng(43);
  for (auto& w : windows) {
    for (double& v : w) v = rng.Gaussian();
  }
  ASSERT_TRUE(sfa.Fit(windows, labels).ok());
  EXPECT_LT(sfa.Word(windows[0]), 1ull << 12);
}

TEST(Sfa, RejectsOversizedWord) {
  SfaOptions options;
  options.word_length = 40;
  options.alphabet_size = 16;  // 4 bits * 40 > 63
  Sfa sfa(options);
  EXPECT_FALSE(sfa.Fit({{1.0, 2.0}}, {0}).ok());
}

TEST(Sfa, SupervisedBinningNeedsLabels) {
  Sfa sfa;
  EXPECT_FALSE(sfa.Fit({{1.0, 2.0}}, {}).ok());
}

TEST(Sfa, EquiDepthModeNeedsNoLabels) {
  SfaOptions options;
  options.binning = SfaBinning::kEquiDepth;
  Sfa sfa(options);
  std::vector<std::vector<double>> windows(8, std::vector<double>(8, 0.0));
  Rng rng(44);
  for (auto& w : windows) {
    for (double& v : w) v = rng.Gaussian();
  }
  EXPECT_TRUE(sfa.Fit(windows, {}).ok());
  EXPECT_TRUE(sfa.fitted());
}

TEST(Chi2, InformativeFeatureScoresHigher) {
  // Feature 0 appears only in class 0, feature 1 only in class 1, feature 2 in
  // both equally: the class-pure features must dominate the balanced one.
  std::vector<SparseVector> rows(20);
  std::vector<int> labels(20);
  for (int i = 0; i < 20; ++i) {
    labels[i] = i < 10 ? 0 : 1;
    rows[i].Add(i < 10 ? 0 : 1, 1.0);
    rows[i].Add(2, 1.0);
    rows[i].SortAndMerge();
  }
  const auto scores = Chi2Scores(rows, 3, labels);
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_GT(scores[1], scores[2]);
  // A feature with identical mass in both (equal-mass) classes scores zero.
  EXPECT_NEAR(scores[2], 0.0, 1e-9);
}

TEST(Chi2, SelectAppliesThreshold) {
  std::vector<SparseVector> rows(20);
  std::vector<int> labels(20);
  for (int i = 0; i < 20; ++i) {
    labels[i] = i < 10 ? 0 : 1;
    rows[i].Add(i < 10 ? 0 : 1, 1.0);
    rows[i].Add(2, 1.0);
  }
  const auto selected = Chi2Select(rows, 3, labels, 2.0);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], 0u);
  EXPECT_EQ(selected[1], 1u);
}

TEST(Chi2, NeverSelectsEmptySet) {
  // All features uninformative: fall back to observed features.
  std::vector<SparseVector> rows(4);
  std::vector<int> labels{0, 1, 0, 1};
  for (auto& r : rows) r.Add(0, 1.0);
  const auto selected = Chi2Select(rows, 1, labels, 100.0);
  EXPECT_FALSE(selected.empty());
}

TEST(Chi2, ProjectRemapsIndices) {
  SparseVector row;
  row.Add(3, 2.0);
  row.Add(7, 5.0);
  const SparseVector projected = ProjectRow(row, {3, 7});
  ASSERT_EQ(projected.entries.size(), 2u);
  EXPECT_EQ(projected.entries[0].first, 0u);
  EXPECT_EQ(projected.entries[1].first, 1u);
  EXPECT_DOUBLE_EQ(projected.entries[1].second, 5.0);
}

TEST(Chi2, ProjectDropsUnselected) {
  SparseVector row;
  row.Add(1, 1.0);
  row.Add(2, 1.0);
  const SparseVector projected = ProjectRow(row, {2});
  ASSERT_EQ(projected.entries.size(), 1u);
  EXPECT_EQ(projected.entries[0].first, 0u);
}

}  // namespace
}  // namespace etsc
