#include "core/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace etsc {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotImplemented), "NotImplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ETSC_ASSIGN_OR_RETURN(int half, Half(x));
  ETSC_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(Result, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  auto err = Quarter(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  ETSC_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(Status, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

TEST(CheckMacro, PassesOnTrue) {
  ETSC_CHECK(1 + 1 == 2);  // must not abort
  SUCCEED();
}

TEST(CheckMacroDeathTest, AbortsOnFalse) {
  EXPECT_DEATH(ETSC_CHECK(false), "ETSC_CHECK failed");
}

TEST(ResultDeathTest, ValueOfErrorAborts) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH((void)result.value(), "errored Result");
}

}  // namespace
}  // namespace etsc
