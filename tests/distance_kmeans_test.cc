#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.h"
#include "ml/distance.h"
#include "ml/kmeans.h"

namespace etsc {
namespace {

TEST(Distance, EuclideanBasic) {
  EXPECT_DOUBLE_EQ(Euclidean({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Euclidean({1, 1}, {1, 1}), 0.0);
}

TEST(Distance, EuclideanPrefixIgnoresTail) {
  EXPECT_DOUBLE_EQ(EuclideanPrefix({0, 0, 99}, {3, 4, 0}, 2), 5.0);
}

TEST(Distance, EuclideanPrefixClampsToShorter) {
  EXPECT_DOUBLE_EQ(EuclideanPrefix({3}, {0, 100}, 5), 3.0);
}

TEST(Distance, MinSubseriesAlignsEverywhere) {
  // Pattern {1,2} matches exactly at offset 2.
  const double d = MinSubseriesDistance({1, 2}, {5, 5, 1, 2, 5});
  EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(Distance, MinSubseriesFindsBestOffset) {
  const double d = MinSubseriesDistance({0, 0}, {3, 4, 1, 1});
  EXPECT_DOUBLE_EQ(d, std::sqrt(2.0));
}

TEST(Distance, MinSubseriesTooShortIsInfinite) {
  EXPECT_TRUE(std::isinf(MinSubseriesDistance({1, 2, 3}, {1, 2})));
}

TEST(Distance, EarlyAbandonMatchesExact) {
  const std::vector<double> pattern{1.0, -2.0, 0.5};
  const std::vector<double> series{0.2, 1.1, -1.9, 0.4, 3.0, 1.0, -2.0, 0.5};
  const double exact = MinSubseriesDistance(pattern, series);
  const double abandoned =
      MinSubseriesDistanceEarlyAbandon(pattern, series, 1e9);
  EXPECT_DOUBLE_EQ(exact, abandoned);
}

TEST(Distance, EarlyAbandonNeverBelowBound) {
  // With a tight bound the result can only be >= the true minimum.
  const std::vector<double> pattern{0.0, 0.0};
  const std::vector<double> series{5, 5, 5, 5};
  const double d = MinSubseriesDistanceEarlyAbandon(pattern, series, 0.1);
  EXPECT_GE(d, 0.1);
}

TEST(Distance, SquaredPrefixMatchesNaiveSum) {
  // Length 11 exercises both the unrolled blocks and the scalar tail.
  Rng rng(5);
  std::vector<double> a(11), b(11);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
  }
  double naive = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    naive += (a[i] - b[i]) * (a[i] - b[i]);
  }
  EXPECT_NEAR(EuclideanPrefixSq(a, b, a.size()), naive, 1e-12);
  EXPECT_DOUBLE_EQ(EuclideanPrefix(a, b, a.size()),
                   std::sqrt(EuclideanPrefixSq(a, b, a.size())));
}

TEST(Distance, MinSubseriesSqAgreesWithExhaustiveScan) {
  Rng rng(6);
  std::vector<double> pattern(7), series(40);
  for (double& v : pattern) v = rng.Gaussian();
  for (double& v : series) v = rng.Gaussian();
  double naive = std::numeric_limits<double>::infinity();
  for (size_t start = 0; start + pattern.size() <= series.size(); ++start) {
    double sum = 0.0;
    for (size_t i = 0; i < pattern.size(); ++i) {
      const double d = pattern[i] - series[start + i];
      sum += d * d;
    }
    naive = std::min(naive, sum);
  }
  const double exact = MinSubseriesDistanceSq(pattern, series);
  EXPECT_NEAR(exact, naive, 1e-12);
  EXPECT_DOUBLE_EQ(MinSubseriesDistance(pattern, series), std::sqrt(exact));
}

TEST(Distance, MinSubseriesSqEarlyAbandonRespectsTheBound) {
  Rng rng(7);
  std::vector<double> pattern(6), series(30);
  for (double& v : pattern) v = rng.Gaussian();
  for (double& v : series) v = rng.Gaussian();
  const double exact = MinSubseriesDistanceSq(pattern, series);
  // A generous bound must not change the answer.
  EXPECT_DOUBLE_EQ(
      MinSubseriesDistanceSqEarlyAbandon(pattern, series, 1e18), exact);
  // A bound below the true minimum is returned unchanged (never improved).
  const double tight = exact * 0.5;
  EXPECT_DOUBLE_EQ(MinSubseriesDistanceSqEarlyAbandon(pattern, series, tight),
                   tight);
}

TEST(Distance, MinSubseriesSqTooShortIsInfinite) {
  EXPECT_TRUE(std::isinf(MinSubseriesDistanceSq({1, 2, 3}, {1, 2})));
  EXPECT_TRUE(std::isinf(MinSubseriesDistanceSq({}, {1, 2})));
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  Rng rng(11);
  std::vector<std::vector<double>> points;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 20; ++i) {
      points.push_back({10.0 * c + rng.Gaussian(0, 0.2),
                        -5.0 * c + rng.Gaussian(0, 0.2)});
    }
  }
  KMeansOptions options;
  options.num_clusters = 3;
  auto model = KMeansFit(points, options, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->centroids.size(), 3u);
  // All members of one ground-truth blob share an assignment.
  for (int c = 0; c < 3; ++c) {
    const size_t first = model->assignments[c * 20];
    for (int i = 1; i < 20; ++i) {
      EXPECT_EQ(model->assignments[c * 20 + i], first) << "blob " << c;
    }
  }
  EXPECT_LT(model->inertia, 20.0);
}

TEST(KMeans, KClampedToPointCount) {
  Rng rng(12);
  std::vector<std::vector<double>> points{{0.0}, {1.0}};
  KMeansOptions options;
  options.num_clusters = 10;
  auto model = KMeansFit(points, options, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->centroids.size(), 2u);
}

TEST(KMeans, EmptyInputRejected) {
  Rng rng(13);
  auto model = KMeansFit({}, {}, &rng);
  EXPECT_FALSE(model.ok());
}

TEST(KMeans, RaggedInputRejected) {
  Rng rng(14);
  auto model = KMeansFit({{1.0}, {1.0, 2.0}}, {}, &rng);
  EXPECT_FALSE(model.ok());
}

TEST(KMeans, AssignPicksNearestCentroid) {
  KMeansModel model;
  model.centroids = {{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_EQ(model.Assign({1.0, 1.0}), 0u);
  EXPECT_EQ(model.Assign({9.0, 9.0}), 1u);
}

TEST(KMeans, MembershipProbabilitiesSumToOne) {
  KMeansModel model;
  model.centroids = {{0.0}, {10.0}, {20.0}};
  const auto probs = model.MembershipProbabilities({2.0});
  double total = 0.0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Closest cluster has the highest membership.
  EXPECT_GT(probs[0], probs[1]);
  EXPECT_GT(probs[1], probs[2]);
}

TEST(KMeans, DeterministicUnderSeed) {
  std::vector<std::vector<double>> points;
  Rng gen(15);
  for (int i = 0; i < 30; ++i) points.push_back({gen.Gaussian(), gen.Gaussian()});
  Rng rng1(99), rng2(99);
  auto a = KMeansFit(points, {}, &rng1);
  auto b = KMeansFit(points, {}, &rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
}

TEST(KMeans, SingleCluster) {
  Rng rng(16);
  std::vector<std::vector<double>> points{{0.0}, {2.0}, {4.0}};
  KMeansOptions options;
  options.num_clusters = 1;
  auto model = KMeansFit(points, options, &rng);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->centroids.size(), 1u);
  EXPECT_NEAR(model->centroids[0][0], 2.0, 1e-9);
}

}  // namespace
}  // namespace etsc
