#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tsc/muse.h"
#include "tsc/weasel.h"

namespace etsc {
namespace {

using testing::FullAccuracy;
using testing::MakeToyDataset;
using testing::MakeToyMultivariate;

TEST(ChooseWindowSizesFn, EvenSpreadAndBounds) {
  const auto sizes = ChooseWindowSizes(4, 40, 5);
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes.front(), 4u);
  EXPECT_EQ(sizes.back(), 40u);
  for (size_t i = 1; i < sizes.size(); ++i) EXPECT_GT(sizes[i], sizes[i - 1]);
}

TEST(ChooseWindowSizesFn, ShortSeriesCollapses) {
  const auto sizes = ChooseWindowSizes(4, 5, 20);
  EXPECT_EQ(sizes.size(), 2u);  // only 4 and 5 possible
}

TEST(ChooseWindowSizesFn, MaxBelowMin) {
  const auto sizes = ChooseWindowSizes(8, 5, 10);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 5u);
}

TEST(PackWeaselKeyFn, InjectiveOnComponents) {
  const uint64_t a = PackWeaselKey(1, 100, 0);
  const uint64_t b = PackWeaselKey(2, 100, 0);
  const uint64_t c = PackWeaselKey(1, 101, 0);
  const uint64_t d = PackWeaselKey(1, 100, 1);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(Weasel, LearnsToyProblem) {
  Dataset d = MakeToyDataset(20, 40);
  WeaselClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(FullAccuracy(model, d), 0.95);  // train accuracy
  EXPECT_GT(model.num_features(), 0u);
}

TEST(Weasel, PredictsOnShorterPrefix) {
  Dataset d = MakeToyDataset(20, 40);
  WeaselClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  // A prefix of half length must still classify (windows that fit are used).
  auto pred = model.Predict(d.instance(0).Prefix(20));
  EXPECT_TRUE(pred.ok());
}

TEST(Weasel, RejectsMultivariate) {
  Dataset mv = MakeToyMultivariate(5, 20);
  WeaselClassifier model;
  EXPECT_FALSE(model.Fit(mv).ok());
  EXPECT_FALSE(model.SupportsMultivariate());
}

TEST(Weasel, RejectsEmptyAndTooShort) {
  WeaselClassifier model;
  EXPECT_FALSE(model.Fit(Dataset()).ok());
  Dataset tiny("t", {TimeSeries::Univariate({1.0})}, {0});
  EXPECT_FALSE(model.Fit(tiny).ok());
}

TEST(Weasel, PredictBeforeFitFails) {
  WeaselClassifier model;
  EXPECT_FALSE(model.Predict(TimeSeries::Univariate({1, 2, 3})).ok());
}

TEST(Weasel, ProbaSumsToOne) {
  Dataset d = MakeToyDataset(15, 30);
  WeaselClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  auto proba = model.PredictProba(d.instance(0));
  ASSERT_TRUE(proba.ok());
  double total = 0.0;
  for (double p : *proba) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Weasel, CloneUntrainedIsFresh) {
  Dataset d = MakeToyDataset(10, 20);
  WeaselClassifier model;
  ASSERT_TRUE(model.Fit(d).ok());
  auto clone = model.CloneUntrained();
  EXPECT_FALSE(clone->Predict(d.instance(0)).ok());
  ASSERT_TRUE(clone->Fit(d).ok());
  EXPECT_TRUE(clone->Predict(d.instance(0)).ok());
}

TEST(Weasel, DeterministicUnderSeed) {
  Dataset d = MakeToyDataset(15, 30);
  WeaselClassifier a, b;
  ASSERT_TRUE(a.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(*a.Predict(d.instance(i)), *b.Predict(d.instance(i)));
  }
}

TEST(Weasel, NormalizeInputOptionRuns) {
  WeaselOptions options;
  options.normalize_input = true;
  WeaselClassifier model(options);
  Dataset d = MakeToyDataset(15, 30);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(FullAccuracy(model, d), 0.8);
}

TEST(Muse, LearnsMultivariateToy) {
  Dataset mv = MakeToyMultivariate(15, 30);
  MuseClassifier model;
  ASSERT_TRUE(model.Fit(mv).ok());
  EXPECT_TRUE(model.SupportsMultivariate());
  EXPECT_GE(FullAccuracy(model, mv), 0.9);
}

TEST(Muse, DerivativeHelper) {
  const auto d = Derivative({1.0, 3.0, 6.0});
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);  // last repeats
}

TEST(Muse, DerivativeOfShortSeries) {
  EXPECT_EQ(Derivative({5.0}).size(), 1u);
  EXPECT_DOUBLE_EQ(Derivative({5.0})[0], 0.0);
}

TEST(Muse, VariableCountMismatchRejected) {
  Dataset mv = MakeToyMultivariate(10, 20);
  MuseClassifier model;
  ASSERT_TRUE(model.Fit(mv).ok());
  auto pred = model.Predict(TimeSeries::Univariate({1, 2, 3}));
  EXPECT_FALSE(pred.ok());
}

TEST(Muse, WithoutDerivativesStillWorks) {
  MuseOptions options;
  options.use_derivatives = false;
  MuseClassifier model(options);
  Dataset mv = MakeToyMultivariate(12, 24);
  ASSERT_TRUE(model.Fit(mv).ok());
  EXPECT_GE(FullAccuracy(model, mv), 0.8);
}

TEST(PackMuseKeyFn, ChannelSeparatesKeys) {
  EXPECT_NE(PackMuseKey(0, 1, 5, 0), PackMuseKey(1, 1, 5, 0));
}

}  // namespace
}  // namespace etsc
