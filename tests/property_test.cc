// Property-style parameterized sweeps (TEST_P) over the framework's
// invariants: metric bounds, split invariants, transform identities and the
// EarlyClassifier contract for every registered algorithm.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "algos/registrations.h"
#include "core/metrics.h"
#include "core/registry.h"
#include "core/rng.h"
#include "core/voting.h"
#include "ml/fourier.h"
#include "ml/kmeans.h"
#include "ml/sfa.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

// ---------------------------------------------------------------- metrics

class MetricBoundsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricBoundsTest, AllScoresWithinBounds) {
  Rng rng(GetParam());
  const size_t n = 5 + rng.Index(50);
  const size_t num_classes = 2 + rng.Index(5);
  std::vector<int> truth(n), predicted(n);
  std::vector<size_t> prefixes(n), lengths(n);
  for (size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<int>(rng.Index(num_classes));
    predicted[i] = static_cast<int>(rng.Index(num_classes));
    lengths[i] = 1 + rng.Index(100);
    prefixes[i] = 1 + rng.Index(lengths[i]);
  }
  const EvalScores scores = ComputeScores(truth, predicted, prefixes, lengths);
  EXPECT_GE(scores.accuracy, 0.0);
  EXPECT_LE(scores.accuracy, 1.0);
  EXPECT_GE(scores.f1, 0.0);
  EXPECT_LE(scores.f1, 1.0);
  EXPECT_GT(scores.earliness, 0.0);
  EXPECT_LE(scores.earliness, 1.0);
  EXPECT_GE(scores.harmonic_mean, 0.0);
  EXPECT_LE(scores.harmonic_mean, 1.0);
  // The harmonic mean of accuracy and timeliness lies between them (and is
  // zero when either is zero).
  const double lo = std::min(scores.accuracy, 1.0 - scores.earliness);
  const double hi = std::max(scores.accuracy, 1.0 - scores.earliness);
  if (lo <= 0.0) {
    EXPECT_DOUBLE_EQ(scores.harmonic_mean, 0.0);
  } else {
    EXPECT_GE(scores.harmonic_mean, lo - 1e-12);
    EXPECT_LE(scores.harmonic_mean, hi + 1e-12);
  }
}

TEST_P(MetricBoundsTest, PerfectPredictionMaximisesAccuracy) {
  Rng rng(GetParam() + 1000);
  const size_t n = 5 + rng.Index(30);
  std::vector<int> truth(n);
  for (auto& t : truth) t = static_cast<int>(rng.Index(3));
  const ConfusionMatrix cm(truth, truth);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricBoundsTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------------------ splits

class KFoldPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KFoldPropertyTest, PartitionAndStratification) {
  const size_t k = GetParam();
  Dataset d = testing::MakeToyDataset(4 * k, 8);  // 4k per class
  Rng rng(17);
  const auto folds = StratifiedKFold(d, k, &rng);
  ASSERT_EQ(folds.size(), k);
  std::set<size_t> seen;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.test.size(), 8u);  // 2 classes x 4 each
    for (size_t i : fold.test) EXPECT_TRUE(seen.insert(i).second);
    size_t zeros = 0;
    for (size_t i : fold.test) zeros += d.label(i) == 0 ? 1 : 0;
    EXPECT_EQ(zeros, 4u);
  }
  EXPECT_EQ(seen.size(), d.size());
}

INSTANTIATE_TEST_SUITE_P(FoldCounts, KFoldPropertyTest,
                         ::testing::Values(2, 3, 4, 5, 8));

// --------------------------------------------------------- transform sweeps

struct DftParam {
  size_t window;
  size_t coefficients;
  bool drop_first;
};

class SlidingDftPropertyTest : public ::testing::TestWithParam<DftParam> {};

TEST_P(SlidingDftPropertyTest, MatchesDirectDftEverywhere) {
  const DftParam param = GetParam();
  Rng rng(23);
  std::vector<double> series(param.window * 3);
  for (double& v : series) v = rng.Gaussian();
  const auto sliding =
      SlidingDft(series, param.window, param.coefficients, param.drop_first);
  ASSERT_EQ(sliding.size(), series.size() - param.window + 1);
  for (size_t s = 0; s < sliding.size(); s += 3) {
    const std::vector<double> window(series.begin() + s,
                                     series.begin() + s + param.window);
    const auto direct =
        DftCoefficients(window, param.coefficients, param.drop_first);
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_NEAR(sliding[s][i], direct[i], 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SlidingDftPropertyTest,
    ::testing::Values(DftParam{8, 2, false}, DftParam{8, 2, true},
                      DftParam{16, 4, false}, DftParam{16, 4, true},
                      DftParam{25, 3, true}, DftParam{32, 8, false}));

struct SfaParam {
  size_t word_length;
  size_t alphabet;
  SfaBinning binning;
};

class SfaPropertyTest : public ::testing::TestWithParam<SfaParam> {};

TEST_P(SfaPropertyTest, WordsWithinBitBudgetAndDeterministic) {
  const SfaParam param = GetParam();
  SfaOptions options;
  options.word_length = param.word_length;
  options.alphabet_size = param.alphabet;
  options.binning = param.binning;
  Sfa sfa(options);

  Rng rng(29);
  std::vector<std::vector<double>> windows(40, std::vector<double>(16));
  std::vector<int> labels(40);
  for (size_t i = 0; i < windows.size(); ++i) {
    labels[i] = static_cast<int>(i % 2);
    for (double& v : windows[i]) {
      v = rng.Gaussian(labels[i] == 0 ? 0.0 : 2.0, 1.0);
    }
  }
  ASSERT_TRUE(sfa.Fit(windows, labels).ok());
  size_t bits = 1;
  while ((1u << bits) < param.alphabet) ++bits;
  for (const auto& w : windows) {
    const uint64_t word = sfa.Word(w);
    EXPECT_LT(word, 1ull << (bits * param.word_length));
    EXPECT_EQ(word, sfa.Word(w));  // deterministic
  }
  // Every learned bin boundary list is sorted.
  for (const auto& bounds : sfa.bins()) {
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
    EXPECT_LE(bounds.size(), param.alphabet - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SfaPropertyTest,
    ::testing::Values(SfaParam{2, 2, SfaBinning::kInformationGain},
                      SfaParam{4, 4, SfaBinning::kInformationGain},
                      SfaParam{6, 4, SfaBinning::kInformationGain},
                      SfaParam{4, 8, SfaBinning::kInformationGain},
                      SfaParam{4, 4, SfaBinning::kEquiDepth},
                      SfaParam{8, 2, SfaBinning::kEquiDepth}));

// ----------------------------------------------------------------- k-means

class KMeansPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KMeansPropertyTest, MoreClustersNeverIncreaseInertia) {
  Rng gen(31);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({gen.Gaussian(0, 5), gen.Gaussian(0, 5)});
  }
  const size_t k = GetParam();
  KMeansOptions single;
  single.num_clusters = 1;
  KMeansOptions multi;
  multi.num_clusters = k;
  Rng rng1(7), rng2(7);
  auto one = KMeansFit(points, single, &rng1);
  auto many = KMeansFit(points, multi, &rng2);
  ASSERT_TRUE(one.ok() && many.ok());
  // k = 1 is the global mean: any k >= 1 local optimum has at most that
  // inertia (k-means++ guarantees at-least-one-centre-per-chosen-seed).
  EXPECT_LE(many->inertia, one->inertia + 1e-9);
  // Every assignment refers to an existing centroid.
  for (size_t a : many->assignments) EXPECT_LT(a, many->centroids.size());
}

INSTANTIATE_TEST_SUITE_P(ClusterCounts, KMeansPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// ------------------------------------------- EarlyClassifier contract sweep

class AlgorithmContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { RegisterBuiltinClassifiers(); }
};

TEST_P(AlgorithmContractTest, FitPredictContract) {
  auto model_result = ClassifierRegistry::Global().Create(GetParam());
  ASSERT_TRUE(model_result.ok());
  std::unique_ptr<EarlyClassifier> model = std::move(*model_result);

  Dataset train = testing::MakeToyDataset(12, 24, 0.0, 41);
  Dataset test = testing::MakeToyDataset(6, 24, 0.0, 43);
  ASSERT_TRUE(model->Fit(train).ok()) << GetParam();

  const std::set<int> valid_labels{0, 1};
  for (size_t i = 0; i < test.size(); ++i) {
    auto pred = model->PredictEarly(test.instance(i));
    ASSERT_TRUE(pred.ok()) << GetParam();
    EXPECT_TRUE(valid_labels.count(pred->label)) << GetParam();
    EXPECT_GE(pred->prefix_length, 1u);
    EXPECT_LE(pred->prefix_length, test.instance(i).length());
  }
}

TEST_P(AlgorithmContractTest, DeterministicAcrossIdenticalRuns) {
  auto a = ClassifierRegistry::Global().Create(GetParam());
  auto b = ClassifierRegistry::Global().Create(GetParam());
  ASSERT_TRUE(a.ok() && b.ok());
  Dataset train = testing::MakeToyDataset(10, 20, 0.0, 47);
  Dataset test = testing::MakeToyDataset(5, 20, 0.0, 53);
  ASSERT_TRUE((*a)->Fit(train).ok());
  ASSERT_TRUE((*b)->Fit(train).ok());
  for (size_t i = 0; i < test.size(); ++i) {
    auto pa = (*a)->PredictEarly(test.instance(i));
    auto pb = (*b)->PredictEarly(test.instance(i));
    ASSERT_TRUE(pa.ok() && pb.ok());
    EXPECT_EQ(pa->label, pb->label) << GetParam();
    EXPECT_EQ(pa->prefix_length, pb->prefix_length) << GetParam();
  }
}

TEST_P(AlgorithmContractTest, CloneUntrainedIsIndependent) {
  auto model = ClassifierRegistry::Global().Create(GetParam());
  ASSERT_TRUE(model.ok());
  auto clone = (*model)->CloneUntrained();
  // The clone must be untrained...
  EXPECT_FALSE(clone->PredictEarly(TimeSeries::Univariate(
                        std::vector<double>(20, 0.0)))
                   .ok());
  // ...and trainable on its own.
  Dataset train = testing::MakeToyDataset(10, 20, 0.0, 59);
  ASSERT_TRUE(clone->Fit(train).ok()) << GetParam();
}

TEST_P(AlgorithmContractTest, MultivariateThroughVotingWrapper) {
  auto model = ClassifierRegistry::Global().Create(GetParam());
  ASSERT_TRUE(model.ok());
  Dataset mv_train = testing::MakeToyMultivariate(10, 16, 2, 61);
  Dataset mv_test = testing::MakeToyMultivariate(4, 16, 2, 67);
  auto wrapped = WrapForDataset(std::move(*model), mv_train);
  ASSERT_TRUE(wrapped->Fit(mv_train).ok()) << GetParam();
  for (size_t i = 0; i < mv_test.size(); ++i) {
    auto pred = wrapped->PredictEarly(mv_test.instance(i));
    ASSERT_TRUE(pred.ok()) << GetParam();
    EXPECT_LE(pred->prefix_length, mv_test.instance(i).length());
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmContractTest,
                         ::testing::Values("ecec", "economy-k", "ects", "edsc",
                                           "teaser", "s-weasel", "s-mini"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// s-mlstm is excluded from the sweep above only for runtime; its contract is
// covered once here.
TEST(AlgorithmContractMlstm, FitPredictContract) {
  RegisterBuiltinClassifiers();
  auto model = ClassifierRegistry::Global().Create("s-mlstm");
  ASSERT_TRUE(model.ok());
  Dataset train = testing::MakeToyDataset(8, 16, 0.0, 71);
  ASSERT_TRUE((*model)->Fit(train).ok());
  auto pred = (*model)->PredictEarly(train.instance(0));
  ASSERT_TRUE(pred.ok());
  EXPECT_LE(pred->prefix_length, 16u);
}

}  // namespace
}  // namespace etsc
