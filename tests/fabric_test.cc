#include "core/fabric.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/counters.h"
#include "core/dataset.h"
#include "core/fault.h"

namespace etsc {
namespace {

/// Sets one environment variable for the scope of a test and restores the
/// previous value (or unsets) on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* previous = std::getenv(name);
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_previous_) {
      ::setenv(name_.c_str(), previous_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string previous_;
  bool had_previous_ = false;
};

/// One pre-escaped terminal journal row in the on-disk format.
std::string Row(const std::string& algorithm, const std::string& dataset,
                bool trained = true, bool quarantined = false) {
  std::ostringstream ss;
  ss << algorithm << ',' << dataset << ',' << (trained ? 1 : 0)
     << ",0.5,0.5,0.25,0.5,1,0.001,0," << (quarantined ? 1 : 0) << ",,#end";
  return ss.str();
}

uint64_t CounterValue(const std::string& name) {
  return MetricRegistry::Global().counter(name).value();
}

std::string TestPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  std::remove((path + ".stale").c_str());
  return path;
}

// ---------------------------------------------------------------------------
// Lease options and control rows (pure, no I/O)
// ---------------------------------------------------------------------------

TEST(FabricLease, OptionsFromEnvValidateGarbageAndClampTheHeartbeat) {
  {
    ScopedEnv ttl("ETSC_LEASE_TTL_MS", "junk");
    ScopedEnv hb("ETSC_HEARTBEAT_MS", "-4");
    const fabric::LeaseOptions defaults;
    const fabric::LeaseOptions options = fabric::LeaseOptions::FromEnv();
    // Bare strtod would have silently produced 0 (an instantly-expiring
    // lease); garbage must keep the defaults instead.
    EXPECT_DOUBLE_EQ(options.ttl_ms, defaults.ttl_ms);
    EXPECT_DOUBLE_EQ(options.heartbeat_ms, defaults.heartbeat_ms);
  }
  {
    ScopedEnv ttl("ETSC_LEASE_TTL_MS", "1000");
    ScopedEnv hb("ETSC_HEARTBEAT_MS", "4000");
    const fabric::LeaseOptions options = fabric::LeaseOptions::FromEnv();
    EXPECT_DOUBLE_EQ(options.ttl_ms, 1000.0);
    // A heartbeat slower than the TTL could never keep a lease alive.
    EXPECT_DOUBLE_EQ(options.heartbeat_ms, 250.0);
  }
}

TEST(FabricLease, ControlRowsRoundTripAndTornRowsAreRejected) {
  fabric::LeaseRow lease;
  lease.algorithm = "ECTS";
  lease.dataset = "PowerCons";
  lease.owner = "w1";
  lease.expiry_ms = 123456789;
  const std::string line = fabric::FormatLeaseRow(lease);
  const fabric::ControlRow parsed = fabric::ParseControlRow(line);
  ASSERT_EQ(parsed.kind, fabric::ControlRowKind::kLease);
  EXPECT_EQ(parsed.lease.algorithm, "ECTS");
  EXPECT_EQ(parsed.lease.dataset, "PowerCons");
  EXPECT_EQ(parsed.lease.owner, "w1");
  EXPECT_EQ(parsed.lease.expiry_ms, 123456789u);

  // A torn control row (crash mid-write) must be skipped, not half-parsed.
  const std::string torn = line.substr(0, line.size() - 1);
  EXPECT_EQ(fabric::ParseControlRow(torn).kind, fabric::ControlRowKind::kNone);

  fabric::QuarantineRow quarantine;
  quarantine.algorithm = "EDSC";
  quarantine.owner = "w2";
  const fabric::ControlRow q =
      fabric::ParseControlRow(fabric::FormatQuarantineRow(quarantine));
  ASSERT_EQ(q.kind, fabric::ControlRowKind::kQuarantine);
  EXPECT_EQ(q.quarantine.algorithm, "EDSC");
  EXPECT_EQ(q.quarantine.owner, "w2");

  // Ordinary cell rows are not control rows.
  EXPECT_EQ(fabric::ParseControlRow(Row("ECTS", "PowerCons")).kind,
            fabric::ControlRowKind::kNone);
}

TEST(FabricLease, HeaderVersionParsesTheJournalFormat) {
  EXPECT_EQ(fabric::HeaderVersion("# v4 scale=1 data=00"), 4);
  EXPECT_EQ(fabric::HeaderVersion("# v99 future data=00"), 99);
  EXPECT_EQ(fabric::HeaderVersion("# unversioned"), 0);
}

// ---------------------------------------------------------------------------
// LeaseTable: expiry and steal determinism (explicit clock, no timing)
// ---------------------------------------------------------------------------

TEST(FabricLease, StealsTheLowestExpiredCellAndHonoursLanePrerequisites) {
  // Dataset-major 2x2 grid: [A/d1, B/d1, A/d2, B/d2] with per-algorithm lanes.
  std::vector<fabric::GridCell> grid(4);
  grid[0] = {"A", "d1", fabric::kNoCell};
  grid[1] = {"B", "d1", fabric::kNoCell};
  grid[2] = {"A", "d2", 0};
  grid[3] = {"B", "d2", 1};
  fabric::LeaseTable table(grid);

  auto lease = [](const char* algo, const char* ds, const char* owner,
                  uint64_t expiry) {
    fabric::LeaseRow row;
    row.algorithm = algo;
    row.dataset = ds;
    row.owner = owner;
    row.expiry_ms = expiry;
    return fabric::FormatLeaseRow(row);
  };
  table.ApplyLine(lease("A", "d1", "w1", 1000));
  table.ApplyLine(lease("B", "d1", "w1", 1000));

  // Both lanes' first cells are leased and live; the second cells are gated
  // on their prerequisites, so nothing is acquirable before expiry.
  bool stolen = false;
  EXPECT_EQ(table.NextAvailable(500, &stolen), fabric::kNoCell);
  EXPECT_EQ(table.MsUntilNextExpiry(500), 500u);

  // Past expiry both leases are stealable; the LOWEST index wins — every
  // surviving worker reaches the same answer (steal determinism).
  EXPECT_EQ(table.NextAvailable(1500, &stolen), 0u);
  EXPECT_TRUE(stolen);

  // A terminal row on cell 0 unblocks its lane successor (cell 2, unleased):
  // the expired lease on cell 1 still wins by index order.
  table.ApplyLine(Row("A", "d1"));
  EXPECT_EQ(table.NextAvailable(1500, &stolen), 1u);
  EXPECT_TRUE(stolen);

  // With cell 1 terminal too, the unleased cell 2 is next — not a steal.
  table.ApplyLine(Row("B", "d1", /*trained=*/false));
  EXPECT_EQ(table.NextAvailable(1500, &stolen), 2u);
  EXPECT_FALSE(stolen);

  table.ApplyLine(fabric::FormatQuarantineRow({"B", "w1"}));
  EXPECT_EQ(table.quarantined_algorithms().count("B"), 1u);

  EXPECT_FALSE(table.AllTerminal());
  table.ApplyLine(Row("A", "d2"));
  table.ApplyLine(Row("B", "d2", /*trained=*/false, /*quarantined=*/true));
  EXPECT_TRUE(table.AllTerminal());
  EXPECT_TRUE(table.statuses()[3].quarantined_row);
}

// ---------------------------------------------------------------------------
// WorkerJournal: the durable queue over a real file
// ---------------------------------------------------------------------------

const char kHeader[] = "# v4 fabric-test data=0000000000000000";

std::vector<fabric::GridCell> OneCellGrid() {
  std::vector<fabric::GridCell> grid(1);
  grid[0] = {"ECTS", "PowerCons", fabric::kNoCell};
  return grid;
}

TEST(FabricJournal, ASecondOwnerCannotLeaseALiveCell) {
  const std::string path = TestPath("fabric_double_lease.csv");
  fabric::LeaseOptions options;
  options.ttl_ms = 60000.0;  // nothing expires during the test
  fabric::WorkerJournal w1(path, kHeader, OneCellGrid(), "w1", options);
  fabric::WorkerJournal w2(path, kHeader, OneCellGrid(), "w2", options);
  ASSERT_TRUE(w1.EnsureHeader().ok());
  ASSERT_TRUE(w2.EnsureHeader().ok());

  auto first = w1.Acquire();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->index, 0u);
  EXPECT_FALSE(first->stolen);

  // The cell is leased and live: w2 must be refused, with a bounded wait.
  auto second = w2.Acquire();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->index, fabric::kNoCell);
  EXPECT_FALSE(second->all_terminal);
  EXPECT_GT(second->retry_after_ms, 0.0);

  ASSERT_TRUE(w1.Renew(0).ok());
  ASSERT_TRUE(w1.Complete(0, Row("ECTS", "PowerCons")).ok());

  // Terminal row published: everyone observes completion.
  auto after = w2.Acquire();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->all_terminal);
  // Renewing a terminal cell is a protocol violation, not a silent success.
  EXPECT_FALSE(w2.Renew(0).ok());
}

TEST(FabricJournal, AnExpiredLeaseIsStolenAndTheLoserDetectsItOnRenew) {
  const std::string path = TestPath("fabric_steal.csv");
  fabric::LeaseOptions fast;
  fast.ttl_ms = 1.0;  // w1's lease expires almost immediately
  fast.heartbeat_ms = 0.25;
  fabric::WorkerJournal w1(path, kHeader, OneCellGrid(), "w1", fast);
  fabric::LeaseOptions slow;
  slow.ttl_ms = 60000.0;
  fabric::WorkerJournal w2(path, kHeader, OneCellGrid(), "w2", slow);
  ASSERT_TRUE(w1.EnsureHeader().ok());

  auto first = w1.Acquire();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->index, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const uint64_t stolen_before = CounterValue("fabric.leases_stolen");
  auto steal = w2.Acquire();
  ASSERT_TRUE(steal.ok()) << steal.status().ToString();
  EXPECT_EQ(steal->index, 0u);
  EXPECT_TRUE(steal->stolen);
  EXPECT_EQ(CounterValue("fabric.leases_stolen"), stolen_before + 1);

  // The original owner's next heartbeat must report the loss so it discards
  // its in-flight result instead of journalling a duplicate row.
  const Status renew = w1.Renew(0);
  ASSERT_FALSE(renew.ok());
  EXPECT_NE(renew.ToString().find("w2"), std::string::npos) << renew.ToString();

  // Quarantine broadcast rides the same journal.
  ASSERT_TRUE(w2.PublishQuarantine("ECTS").ok());
  auto scan = w2.Acquire();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->quarantined_algorithms.count("ECTS"), 1u);
}

TEST(FabricJournal, HeartbeatsKeepASlowCellAliveUntilTheKeeperStops) {
  const std::string path = TestPath("fabric_heartbeat.csv");
  fabric::LeaseOptions options;
  options.ttl_ms = 500.0;
  options.heartbeat_ms = 50.0;
  fabric::WorkerJournal w1(path, kHeader, OneCellGrid(), "w1", options);
  fabric::WorkerJournal w2(path, kHeader, OneCellGrid(), "w2", options);
  ASSERT_TRUE(w1.EnsureHeader().ok());

  auto acquired = w1.Acquire();
  ASSERT_TRUE(acquired.ok());
  ASSERT_EQ(acquired->index, 0u);

  const uint64_t beats_before = CounterValue("fabric.heartbeats");
  {
    // Simulates a cell whose compute outlives the TTL: the keeper's renewals
    // are the only thing standing between w1 and a steal.
    fabric::LeaseKeeper keeper(&w1, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    auto blocked = w2.Acquire();
    ASSERT_TRUE(blocked.ok());
    EXPECT_EQ(blocked->index, fabric::kNoCell)
        << "lease was stolen despite live heartbeats";
    EXPECT_FALSE(keeper.lease_lost());
  }
  EXPECT_GE(CounterValue("fabric.heartbeats"), beats_before + 2);

  // Keeper gone (worker died): the lease now ages out and the cell is stolen.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  auto steal = w2.Acquire();
  ASSERT_TRUE(steal.ok());
  EXPECT_EQ(steal->index, 0u);
  EXPECT_TRUE(steal->stolen);
}

TEST(FabricJournal, RejectsAJournalWrittenByANewerBuild) {
  const std::string path = TestPath("fabric_newer.csv");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "# v99 from-the-future data=0000000000000000\n";
  }
  fabric::WorkerJournal journal(path, kHeader, OneCellGrid(), "w1",
                                fabric::LeaseOptions());
  const Status status = journal.EnsureHeader();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("newer"), std::string::npos)
      << status.ToString();
  // Unlike a config mismatch, the journal must NOT be rotated aside: the
  // operator asked for an explicit decision, not silent data loss.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("# v99", 0), 0u);
}

// ---------------------------------------------------------------------------
// Campaign-level fabric: worker runs vs the serial campaign
// ---------------------------------------------------------------------------

bench::CampaignConfig FabricConfig(const std::string& cache_name) {
  bench::CampaignConfig config;
  config.algorithms = {"ECTS"};
  config.datasets = {"DodgerLoopGame", "PowerCons"};
  config.folds = 2;
  config.height_scale = 1.0;
  config.train_budget_seconds = 30.0;
  config.cache_path = TestPath(cache_name);
  std::remove((config.cache_path + ".report.json").c_str());
  std::remove((config.cache_path + ".merged.csv").c_str());
  return config;
}

/// Journal rows with the two timing fields blanked and control rows dropped:
/// what must be identical between a fabric run and the serial campaign.
std::vector<std::string> RowsModuloTimings(const std::string& path) {
  std::vector<std::string> rows;
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '@') continue;
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    // algorithm,dataset,trained,acc,f1,earliness,hm,train_s,test_s,
    // retries,quarantined,failure...
    if (fields.size() > 8) fields[7] = fields[8] = "";
    std::string joined;
    for (const auto& f : fields) joined += f + ",";
    rows.push_back(joined);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(FabricCampaign, OneWorkerCompletesTheGridIdenticallyToTheSerialRun) {
  auto serial_config = FabricConfig("fabric_serial_ref.csv");
  bench::Campaign serial(serial_config);
  ASSERT_TRUE(serial.Run().ok());
  ASSERT_EQ(serial.cells().size(), 2u);

  auto worker_config = FabricConfig("fabric_one_worker.csv");
  bench::Campaign worker(worker_config);
  const Status status = worker.RunWorker("w1");
  ASSERT_TRUE(status.ok()) << status.ToString();

  // Scores (not timings) must match the serial journal bit-for-bit.
  EXPECT_EQ(RowsModuloTimings(worker_config.cache_path),
            RowsModuloTimings(serial_config.cache_path));

  // The continuous merge sees a complete grid and strips the control rows.
  const auto header = bench::JournalHeaderForConfig(worker_config);
  ASSERT_TRUE(header.ok());
  const std::string merged_path = worker_config.cache_path + ".merged.csv";
  const auto merged = bench::MergeShardJournals(
      merged_path, {worker_config.cache_path}, worker_config, *header);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->complete);
  EXPECT_EQ(merged->grid_cells, 2u);
  EXPECT_EQ(merged->terminal_cells, 2u);
  EXPECT_GT(merged->control_rows, 0u);  // the fabric journal had lease rows
  std::ifstream in(merged_path);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_NE(line.substr(0, 1), "@") << "control row leaked into the merge";
  }
}

TEST(FabricCampaign, AKilledWorkersLeaseIsStolenAndTheMergeMatchesSerial) {
  ScopedEnv ttl("ETSC_LEASE_TTL_MS", "200");
  ScopedEnv hb("ETSC_HEARTBEAT_MS", "50");

  auto serial_config = FabricConfig("fabric_drill_ref.csv");
  bench::Campaign serial(serial_config);
  ASSERT_TRUE(serial.Run().ok());

  auto config = FabricConfig("fabric_drill.csv");
  const uint64_t stolen_before = CounterValue("fabric.leases_stolen");
  {
    // w1 computes its first cell, then "dies" holding the lease on the
    // second — the observable journal state of a SIGKILL mid-cell.
    bench::Campaign w1(config);
    std::atomic<int> cells{0};
    bench::WorkerDrillHooks drill;
    drill.on_cell = [&cells](const std::string&, const std::string&) {
      return cells.fetch_add(1) < 1;
    };
    const Status status = w1.RunWorker("w1", &drill);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  {
    // w2 joins the same journal, waits out the orphaned lease, steals it,
    // and finishes the grid.
    bench::Campaign w2(config);
    const Status status = w2.RunWorker("w2");
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_GE(CounterValue("fabric.leases_stolen"), stolen_before + 1);

  const auto header = bench::JournalHeaderForConfig(config);
  ASSERT_TRUE(header.ok());
  const std::string merged_path = config.cache_path + ".merged.csv";
  const auto merged = bench::MergeShardJournals(merged_path,
                                                {config.cache_path}, config,
                                                *header);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->complete);
  // Zero lost cells, and every surviving row identical to the serial run.
  EXPECT_EQ(RowsModuloTimings(merged_path),
            RowsModuloTimings(serial_config.cache_path));
}

TEST(FabricCampaign, MergeRefusesJournalsFromAnotherCampaignIdentity) {
  auto config = FabricConfig("fabric_merge_mismatch.csv");
  {
    std::ofstream out(config.cache_path, std::ios::trunc);
    out << "# v4 some-other-campaign data=1111111111111111\n";
    out << Row("ECTS", "PowerCons") << "\n";
  }
  const auto header = bench::JournalHeaderForConfig(config);
  ASSERT_TRUE(header.ok());
  const auto merged = bench::MergeShardJournals(
      config.cache_path + ".merged.csv", {config.cache_path}, config, *header);
  ASSERT_FALSE(merged.ok());
  // The diagnostic names BOTH fingerprints so the operator can see exactly
  // what disagrees.
  EXPECT_NE(merged.status().ToString().find("some-other-campaign"),
            std::string::npos)
      << merged.status().ToString();
  EXPECT_NE(merged.status().ToString().find(*header), std::string::npos)
      << merged.status().ToString();
}

TEST(FabricCampaign, CampaignRejectsAJournalFromANewerBuild) {
  auto config = FabricConfig("fabric_newer_campaign.csv");
  {
    std::ofstream out(config.cache_path, std::ios::trunc);
    out << "# v99 from-the-future data=0000000000000000\n";
  }
  bench::Campaign campaign(config);
  const Status status = campaign.Run();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("newer"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// die-at fault: the scripted SIGKILL for crash drills
// ---------------------------------------------------------------------------

class StubClassifier : public EarlyClassifier {
 public:
  Status Fit(const Dataset&) override { return Status::OK(); }
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override {
    EarlyPrediction prediction;
    prediction.prefix_length = series.length();
    return prediction;
  }
  std::string name() const override { return "stub"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<StubClassifier>();
  }
};

TEST(DieAtDrill, ExitsTheProcessAbruptlyOnTheConfiguredCell) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        Dataset train;
        // First wrap = first campaign cell of "stub": survives die-at:2,
        // and its fold clones share the ordinal (one cell, many Fits).
        DieAtClassifier first(std::make_unique<StubClassifier>(), 2);
        if (!first.Fit(train).ok()) std::_Exit(1);
        auto clone = first.CloneUntrained();
        if (!clone->Fit(train).ok()) std::_Exit(1);
        // Second wrap = second cell: dies mid-Fit, no flushes, no atexit.
        DieAtClassifier second(std::make_unique<StubClassifier>(), 2);
        (void)second.Fit(train);
        std::_Exit(1);  // unreachable when the fault fires
      },
      ::testing::ExitedWithCode(kDieAtExitCode), "die-at fault");
}

}  // namespace
}  // namespace etsc
