// End-to-end smoke tests: every ETSC algorithm and every full-TSC algorithm
// must beat chance comfortably on an easy synthetic problem and report sane
// earliness. Finer-grained behaviour is covered by the per-module tests.

#include <gtest/gtest.h>

#include "algos/ecec.h"
#include "algos/economy_k.h"
#include "algos/ects.h"
#include "algos/edsc.h"
#include "algos/strut.h"
#include "algos/teaser.h"
#include "core/dataset.h"
#include "tests/test_util.h"
#include "tsc/minirocket.h"
#include "tsc/mlstm.h"
#include "tsc/muse.h"
#include "tsc/weasel.h"

namespace etsc {
namespace {

using testing::EarlyAccuracy;
using testing::FullAccuracy;
using testing::MakeToyDataset;
using testing::MakeToyMultivariate;

struct Split {
  Dataset train;
  Dataset test;
};

Split MakeSplit(const Dataset& dataset, uint64_t seed = 9) {
  Rng rng(seed);
  const SplitIndices indices = StratifiedSplit(dataset, 0.7, &rng);
  return {dataset.Subset(indices.train), dataset.Subset(indices.test)};
}

TEST(SmokeEarly, Ects) {
  const Split split = MakeSplit(MakeToyDataset(25, 40));
  EctsClassifier model;
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_GE(EarlyAccuracy(model, split.test), 0.8);
}

TEST(SmokeEarly, Edsc) {
  const Split split = MakeSplit(MakeToyDataset(20, 30));
  EdscOptions options;
  options.start_stride = 2;
  options.length_stride = 3;
  EdscClassifier model(options);
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_GE(EarlyAccuracy(model, split.test), 0.7);
}

TEST(SmokeEarly, EconomyK) {
  const Split split = MakeSplit(MakeToyDataset(25, 40));
  EconomyKOptions options;
  options.max_checkpoints = 8;
  options.gbdt.num_rounds = 15;
  EconomyKClassifier model(options);
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_GE(EarlyAccuracy(model, split.test), 0.8);
}

TEST(SmokeEarly, Ecec) {
  const Split split = MakeSplit(MakeToyDataset(25, 40));
  EcecOptions options;
  options.num_prefixes = 6;
  EcecClassifier model(options);
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_GE(EarlyAccuracy(model, split.test), 0.8);
}

TEST(SmokeEarly, Teaser) {
  const Split split = MakeSplit(MakeToyDataset(25, 40));
  TeaserOptions options;
  options.num_prefixes = 6;
  TeaserClassifier model(options);
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_GE(EarlyAccuracy(model, split.test), 0.8);
}

TEST(SmokeEarly, StrutWeasel) {
  const Split split = MakeSplit(MakeToyDataset(25, 40));
  auto model = MakeStrutWeasel(false);
  ASSERT_TRUE(model->Fit(split.train).ok());
  EXPECT_GE(EarlyAccuracy(*model, split.test), 0.8);
}

TEST(SmokeEarly, StrutMiniRocket) {
  const Split split = MakeSplit(MakeToyDataset(25, 40));
  auto model = MakeStrutMiniRocket();
  ASSERT_TRUE(model->Fit(split.train).ok());
  EXPECT_GE(EarlyAccuracy(*model, split.test), 0.8);
}

TEST(SmokeEarly, StrutMlstm) {
  const Split split = MakeSplit(MakeToyDataset(20, 24));
  StrutOptions options;
  options.fractions = {0.25, 0.5, 1.0};
  auto model = MakeStrutMlstm(options);
  ASSERT_TRUE(model->Fit(split.train).ok());
  EXPECT_GE(EarlyAccuracy(*model, split.test), 0.7);
}

TEST(SmokeFull, Weasel) {
  const Split split = MakeSplit(MakeToyDataset(25, 40));
  WeaselClassifier model;
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_GE(FullAccuracy(model, split.test), 0.85);
}

TEST(SmokeFull, Muse) {
  const Split split = MakeSplit(MakeToyMultivariate(15, 30));
  MuseClassifier model;
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_GE(FullAccuracy(model, split.test), 0.8);
}

TEST(SmokeFull, MiniRocketUnivariate) {
  const Split split = MakeSplit(MakeToyDataset(25, 40));
  MiniRocketClassifier model;
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_GE(FullAccuracy(model, split.test), 0.85);
}

TEST(SmokeFull, MiniRocketMultivariate) {
  const Split split = MakeSplit(MakeToyMultivariate(15, 30));
  MiniRocketClassifier model;
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_GE(FullAccuracy(model, split.test), 0.8);
}

TEST(SmokeFull, Mlstm) {
  const Split split = MakeSplit(MakeToyMultivariate(15, 24));
  MlstmOptions options;
  options.epochs = 25;
  MlstmClassifier model(options);
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_GE(FullAccuracy(model, split.test), 0.7);
}

// Every early classifier reports a prefix length no greater than the series
// length and at least 1.
TEST(SmokeEarly, PrefixLengthsAreSane) {
  const Split split = MakeSplit(MakeToyDataset(20, 30));
  EctsClassifier model;
  ASSERT_TRUE(model.Fit(split.train).ok());
  for (size_t i = 0; i < split.test.size(); ++i) {
    auto pred = model.PredictEarly(split.test.instance(i));
    ASSERT_TRUE(pred.ok());
    EXPECT_GE(pred->prefix_length, 1u);
    EXPECT_LE(pred->prefix_length, split.test.instance(i).length());
  }
}

}  // namespace
}  // namespace etsc
