#include "core/evaluation.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "tests/test_util.h"

namespace etsc {
namespace {

/// Perfect oracle that consumes half the series; lets the harness be tested
/// against exact expected metrics.
class OracleEarly : public EarlyClassifier {
 public:
  Status Fit(const Dataset& train) override {
    // Memorise the class signal rule of MakeToyDataset: class 1 has a level
    // shift; threshold on the mean of the second half.
    (void)train;
    return Status::OK();
  }
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override {
    const size_t half = series.length() / 2;
    double sum = 0.0;
    for (size_t t = 0; t < series.length(); ++t) sum += series.at(0, t);
    const int label = sum / static_cast<double>(series.length()) > 0.5 ? 1 : 0;
    return EarlyPrediction{label, half};
  }
  std::string name() const override { return "oracle"; }
  bool SupportsMultivariate() const override { return false; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<OracleEarly>();
  }
};

/// Always fails to train; simulates the 48-hour cut-off.
class NeverTrains : public EarlyClassifier {
 public:
  Status Fit(const Dataset&) override {
    return Status::ResourceExhausted("pretend 48h exceeded");
  }
  Result<EarlyPrediction> PredictEarly(const TimeSeries&) const override {
    return Status::FailedPrecondition("not fitted");
  }
  std::string name() const override { return "never"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<NeverTrains>();
  }
};

TEST(CrossValidate, RunsAllFolds) {
  Dataset d = testing::MakeToyDataset(15, 20);
  EvaluationOptions options;
  options.num_folds = 5;
  const EvaluationResult result = CrossValidate(d, OracleEarly(), options);
  EXPECT_EQ(result.folds.size(), 5u);
  EXPECT_TRUE(result.trained());
  EXPECT_EQ(result.algorithm, "oracle");
  EXPECT_EQ(result.dataset, "toy");
}

TEST(CrossValidate, OracleScoresNearPerfect) {
  Dataset d = testing::MakeToyDataset(15, 20, /*signal_start=*/0.0, 3, 0.05);
  const EvaluationResult result = CrossValidate(d, OracleEarly());
  const EvalScores scores = result.MeanScores();
  EXPECT_GE(scores.accuracy, 0.95);
  EXPECT_NEAR(scores.earliness, 0.5, 1e-9);
  EXPECT_GT(scores.harmonic_mean, 0.6);
}

TEST(CrossValidate, FailedTrainingIsRecordedNotFatal) {
  Dataset d = testing::MakeToyDataset(10, 10);
  const EvaluationResult result = CrossValidate(d, NeverTrains());
  EXPECT_FALSE(result.trained());
  for (const auto& fold : result.folds) {
    EXPECT_FALSE(fold.trained);
    EXPECT_NE(fold.failure.find("ResourceExhausted"), std::string::npos);
  }
  // Mean scores over zero trained folds are all-zero defaults.
  EXPECT_DOUBLE_EQ(result.MeanScores().accuracy, 0.0);
  EXPECT_DOUBLE_EQ(result.MeanTrainSeconds(), 0.0);
}

TEST(CrossValidate, DeterministicUnderSeed) {
  Dataset d = testing::MakeToyDataset(12, 16);
  EvaluationOptions options;
  options.seed = 77;
  const auto a = CrossValidate(d, OracleEarly(), options);
  const auto b = CrossValidate(d, OracleEarly(), options);
  ASSERT_EQ(a.folds.size(), b.folds.size());
  for (size_t f = 0; f < a.folds.size(); ++f) {
    EXPECT_DOUBLE_EQ(a.folds[f].scores.accuracy, b.folds[f].scores.accuracy);
    EXPECT_DOUBLE_EQ(a.folds[f].scores.earliness, b.folds[f].scores.earliness);
  }
}

TEST(CrossValidate, VotingAppliedToMultivariate) {
  Dataset mv = testing::MakeToyMultivariate(10, 12, 2);
  // OracleEarly is univariate; the harness must wrap it so evaluation works.
  const EvaluationResult result = CrossValidate(mv, OracleEarly());
  EXPECT_TRUE(result.trained());
}

TEST(EvaluateSplitFn, CountsAndTimings) {
  Dataset d = testing::MakeToyDataset(10, 10);
  Rng rng(5);
  const auto split = StratifiedSplit(d, 0.7, &rng);
  Dataset train = d.Subset(split.train);
  Dataset test = d.Subset(split.test);
  OracleEarly oracle;
  const FoldOutcome outcome = EvaluateSplit(train, test, &oracle);
  EXPECT_TRUE(outcome.trained);
  EXPECT_EQ(outcome.num_test, test.size());
  EXPECT_GE(outcome.train_seconds, 0.0);
  EXPECT_GE(outcome.test_seconds, 0.0);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.Seconds(), 0.009);
  sw.Restart();
  EXPECT_LT(sw.Seconds(), 0.009);
}

TEST(EvaluationResultStruct, MeanTestSecondsPerInstance) {
  EvaluationResult result;
  FoldOutcome fold;
  fold.trained = true;
  fold.test_seconds = 1.0;
  fold.num_test = 10;
  result.folds.push_back(fold);
  EXPECT_DOUBLE_EQ(result.MeanTestSecondsPerInstance(), 0.1);
}

}  // namespace
}  // namespace etsc
