#include "core/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tests/test_util.h"

namespace etsc {
namespace {

Dataset MakeSmall() {
  Dataset d("small", {TimeSeries::Univariate({1, 2, 3}),
                      TimeSeries::Univariate({4, 5, 6}),
                      TimeSeries::Univariate({7, 8, 9})},
            {0, 1, 1});
  return d;
}

TEST(Dataset, BasicAccessors) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.name(), "small");
  EXPECT_EQ(d.label(2), 1);
  EXPECT_EQ(d.NumClasses(), 2u);
  EXPECT_EQ(d.MaxLength(), 3u);
  EXPECT_EQ(d.MinLength(), 3u);
  EXPECT_TRUE(d.IsUnivariate());
}

TEST(Dataset, ClassCounts) {
  const auto counts = MakeSmall().ClassCounts();
  EXPECT_EQ(counts.at(0), 1u);
  EXPECT_EQ(counts.at(1), 2u);
}

TEST(Dataset, ClassLabelsSorted) {
  Dataset d("x", {TimeSeries::Univariate({1}), TimeSeries::Univariate({2})},
            {7, -2});
  const auto labels = d.ClassLabels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], -2);
  EXPECT_EQ(labels[1], 7);
}

TEST(Dataset, TruncatedShortensEveryInstance) {
  Dataset d = MakeSmall().Truncated(2);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.instance(i).length(), 2u);
  }
  EXPECT_EQ(d.name(), "small");  // metadata preserved
}

TEST(Dataset, SubsetPreservesOrderAndLabels) {
  Dataset d = MakeSmall().Subset({2, 0});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.instance(0).at(0, 0), 7.0);
  EXPECT_EQ(d.label(0), 1);
  EXPECT_EQ(d.label(1), 0);
}

TEST(Dataset, SingleVariable) {
  Dataset mv = testing::MakeToyMultivariate(3, 10, 2);
  Dataset uni = mv.SingleVariable(1);
  EXPECT_EQ(uni.NumVariables(), 1u);
  EXPECT_EQ(uni.size(), mv.size());
  EXPECT_DOUBLE_EQ(uni.instance(0).at(0, 0), mv.instance(0).at(1, 0));
}

TEST(Dataset, ClassImbalanceRatio) {
  Dataset d("imb", {}, {});
  for (int i = 0; i < 8; ++i) d.Add(TimeSeries::Univariate({0.0}), 0);
  for (int i = 0; i < 2; ++i) d.Add(TimeSeries::Univariate({0.0}), 1);
  EXPECT_DOUBLE_EQ(d.ClassImbalanceRatio(), 4.0);
}

TEST(Dataset, CoefficientOfVariation) {
  Dataset d("cov", {}, {});
  // Values {9, 11}: mean 10, stddev 1, CoV 0.1.
  d.Add(TimeSeries::Univariate({9.0, 11.0}), 0);
  EXPECT_NEAR(d.CoefficientOfVariation(), 0.1, 1e-9);
}

TEST(StratifiedKFold, FoldsPartitionTheData) {
  Dataset d = testing::MakeToyDataset(10, 8);
  Rng rng(1);
  const auto folds = StratifiedKFold(d, 5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<size_t> all_test;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), d.size());
    for (size_t idx : fold.test) {
      EXPECT_TRUE(all_test.insert(idx).second) << "index in two test folds";
    }
    // Train and test are disjoint.
    std::set<size_t> train_set(fold.train.begin(), fold.train.end());
    for (size_t idx : fold.test) EXPECT_EQ(train_set.count(idx), 0u);
  }
  EXPECT_EQ(all_test.size(), d.size());
}

TEST(StratifiedKFold, FoldsAreStratified) {
  Dataset d = testing::MakeToyDataset(10, 8);  // 10 per class
  Rng rng(2);
  const auto folds = StratifiedKFold(d, 5, &rng);
  for (const auto& fold : folds) {
    size_t zeros = 0, ones = 0;
    for (size_t idx : fold.test) {
      (d.label(idx) == 0 ? zeros : ones)++;
    }
    EXPECT_EQ(zeros, 2u);
    EXPECT_EQ(ones, 2u);
  }
}

TEST(StratifiedKFold, DeterministicUnderSeed) {
  Dataset d = testing::MakeToyDataset(6, 8);
  Rng rng1(7), rng2(7);
  const auto a = StratifiedKFold(d, 3, &rng1);
  const auto b = StratifiedKFold(d, 3, &rng2);
  for (size_t f = 0; f < a.size(); ++f) {
    EXPECT_EQ(a[f].test, b[f].test);
  }
}

TEST(StratifiedSplit, RespectsFractionPerClass) {
  Dataset d = testing::MakeToyDataset(10, 8);
  Rng rng(3);
  const auto split = StratifiedSplit(d, 0.7, &rng);
  size_t train_zeros = 0;
  for (size_t idx : split.train) {
    if (d.label(idx) == 0) ++train_zeros;
  }
  EXPECT_EQ(train_zeros, 7u);
  EXPECT_EQ(split.train.size(), 14u);
  EXPECT_EQ(split.test.size(), 6u);
}

TEST(StratifiedSplit, KeepsEveryClassOnBothSidesWhenPossible) {
  Dataset d("tiny", {}, {});
  for (int i = 0; i < 2; ++i) d.Add(TimeSeries::Univariate({0.0}), 0);
  for (int i = 0; i < 2; ++i) d.Add(TimeSeries::Univariate({0.0}), 1);
  Rng rng(4);
  const auto split = StratifiedSplit(d, 0.9, &rng);
  std::set<int> train_labels, test_labels;
  for (size_t idx : split.train) train_labels.insert(d.label(idx));
  for (size_t idx : split.test) test_labels.insert(d.label(idx));
  EXPECT_EQ(train_labels.size(), 2u);
  EXPECT_EQ(test_labels.size(), 2u);
}

TEST(Dataset, FillMissingValuesAppliesToAll) {
  Dataset d("nan", {}, {});
  d.Add(TimeSeries::Univariate({1.0, std::nan(""), 3.0}), 0);
  d.FillMissingValues();
  EXPECT_DOUBLE_EQ(d.instance(0).at(0, 1), 2.0);
}

}  // namespace
}  // namespace etsc
