#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "core/deadline.h"
#include "core/evaluation.h"
#include "core/fault.h"
#include "core/streaming.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Deadline unit tests
// ---------------------------------------------------------------------------

TEST(Deadline, InfiniteNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.Remaining(), kInf);
  EXPECT_TRUE(d.Check("unused").ok());
  EXPECT_FALSE(d.CheckEvery(1));
}

TEST(Deadline, InfiniteBudgetsMapToInfinite) {
  EXPECT_TRUE(Deadline::After(kInf).infinite());
  EXPECT_TRUE(Deadline::After(std::nan("")).infinite());
  EXPECT_TRUE(Deadline::After(1e300).infinite());
}

TEST(Deadline, NonPositiveBudgetIsAlreadyExpired) {
  for (double budget : {0.0, -1.0}) {
    const Deadline d = Deadline::After(budget);
    EXPECT_FALSE(d.infinite());
    EXPECT_TRUE(d.Expired());
    EXPECT_LE(d.Remaining(), 0.0);
    const Status status = d.Check("thing: budget exceeded");
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(status.message(), "thing: budget exceeded");
  }
}

TEST(Deadline, GenerousBudgetHasRemainingTime) {
  const Deadline d = Deadline::After(1000.0);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.Remaining(), 900.0);
  EXPECT_LE(d.Remaining(), 1000.0);
  EXPECT_TRUE(d.Check("unused").ok());
}

TEST(Deadline, CheckEveryPollsFirstCallAndEveryStride) {
  // An already-expired deadline must be caught on the very first amortised
  // check, regardless of stride.
  const Deadline expired = Deadline::After(0.0);
  EXPECT_TRUE(expired.CheckEvery(1024));

  // Expiry between polls is observed no later than `stride` calls after it
  // happens, and is sticky afterwards.
  const Deadline d = Deadline::After(0.01);
  EXPECT_FALSE(d.CheckEvery(4));  // first call polls: not yet expired
  BurnWallClock(0.02);
  bool seen = false;
  for (int i = 0; i < 4; ++i) seen = d.CheckEvery(4);
  EXPECT_TRUE(seen);
  EXPECT_TRUE(d.CheckEvery(4));
}

// ---------------------------------------------------------------------------
// Deliberately-slow classifier: Fit and PredictEarly overrun their budgets.
// ---------------------------------------------------------------------------

/// Burns `fit_seconds` / `predict_seconds` of wall-clock and honors the
/// cooperative deadlines the way every real algorithm does.
class SlowClassifier : public EarlyClassifier {
 public:
  SlowClassifier(double fit_seconds, double predict_seconds)
      : fit_seconds_(fit_seconds), predict_seconds_(predict_seconds) {}

  Status Fit(const Dataset& train) override {
    if (train.empty()) return Status::InvalidArgument("slow: empty train set");
    const Deadline deadline = TrainDeadline();
    BurnWallClock(fit_seconds_);
    ETSC_RETURN_NOT_OK(deadline.Check("slow: train budget exceeded"));
    fitted_ = true;
    return Status::OK();
  }

  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override {
    if (!fitted_) return Status::FailedPrecondition("slow: not fitted");
    const Deadline deadline = PredictDeadline();
    BurnWallClock(predict_seconds_);
    ETSC_RETURN_NOT_OK(deadline.Check("slow: predict budget exceeded"));
    return EarlyPrediction{0, std::min<size_t>(1, series.length())};
  }

  std::string name() const override { return "slow"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<SlowClassifier>(fit_seconds_, predict_seconds_);
  }

 private:
  double fit_seconds_;
  double predict_seconds_;
  bool fitted_ = false;
};

TEST(DeadlineEvaluation, FitOverrunRecordsFailureAndSkipsRemainingFolds) {
  const Dataset data = testing::MakeToyDataset(10, 16);
  SlowClassifier slow(/*fit_seconds=*/0.05, /*predict_seconds=*/0.0);

  EvaluationOptions options;
  options.num_folds = 3;
  options.train_budget_seconds = 0.005;
  const EvaluationResult result = CrossValidate(data, slow, options);

  ASSERT_EQ(result.folds.size(), 1u);  // skip_folds_after_failure (default)
  EXPECT_FALSE(result.folds[0].trained);
  EXPECT_NE(result.folds[0].failure.find("train budget exceeded"),
            std::string::npos);
  EXPECT_FALSE(result.trained());
}

TEST(DeadlineEvaluation, AllFoldsAttemptedWhenSkippingDisabled) {
  const Dataset data = testing::MakeToyDataset(10, 16);
  SlowClassifier slow(0.05, 0.0);

  EvaluationOptions options;
  options.num_folds = 3;
  options.train_budget_seconds = 0.005;
  options.skip_folds_after_failure = false;
  const EvaluationResult result = CrossValidate(data, slow, options);

  ASSERT_EQ(result.folds.size(), 3u);
  for (const auto& fold : result.folds) {
    EXPECT_FALSE(fold.trained);
    EXPECT_FALSE(fold.failure.empty());
  }
}

TEST(DeadlineEvaluation, PredictOverrunDegradesToFullLengthMiss) {
  const Dataset data = testing::MakeToyDataset(10, 16);
  SlowClassifier slow(/*fit_seconds=*/0.0, /*predict_seconds=*/0.05);

  EvaluationOptions options;
  options.num_folds = 2;
  options.predict_budget_seconds = 0.005;
  const EvaluationResult result = CrossValidate(data, slow, options);

  ASSERT_FALSE(result.folds.empty());
  for (const auto& fold : result.folds) {
    EXPECT_TRUE(fold.trained);  // training was fine; prediction degraded
    EXPECT_EQ(fold.num_failed_predictions, fold.num_test);
    EXPECT_NE(fold.failure.find("predict budget exceeded"), std::string::npos);
    // Every instance scored as a full-length miss.
    EXPECT_EQ(fold.scores.accuracy, 0.0);
    EXPECT_EQ(fold.scores.earliness, 1.0);
  }
}

TEST(DeadlineEvaluation, UnlimitedBudgetsLeavePredictionsUntouched) {
  const Dataset data = testing::MakeToyDataset(10, 16);
  SlowClassifier quick(0.0, 0.0);
  const EvaluationResult result = CrossValidate(data, quick, {});
  ASSERT_FALSE(result.folds.empty());
  for (const auto& fold : result.folds) {
    EXPECT_TRUE(fold.trained);
    EXPECT_EQ(fold.num_failed_predictions, 0u);
    EXPECT_TRUE(fold.failure.empty());
  }
}

// ---------------------------------------------------------------------------
// Fault injection through CrossValidate and StreamingSession
// ---------------------------------------------------------------------------

TEST(FaultInjection, InjectedFitFailuresAreRecordedNotFatal) {
  const Dataset data = testing::MakeToyDataset(10, 16);
  FaultOptions faults;
  faults.fit_failure_rate = 1.0;
  FaultyClassifier faulty(std::make_unique<SlowClassifier>(0.0, 0.0), faults);

  EvaluationOptions options;
  options.num_folds = 2;
  options.skip_folds_after_failure = false;
  const EvaluationResult result = CrossValidate(data, faulty, options);
  ASSERT_EQ(result.folds.size(), 2u);
  for (const auto& fold : result.folds) {
    EXPECT_FALSE(fold.trained);
    EXPECT_NE(fold.failure.find("injected fit failure"), std::string::npos);
  }
}

TEST(FaultInjection, InjectedPredictFailuresDegradeGracefully) {
  const Dataset data = testing::MakeToyDataset(10, 16);
  FaultOptions faults;
  faults.predict_failure_rate = 1.0;
  FaultyClassifier faulty(std::make_unique<SlowClassifier>(0.0, 0.0), faults);

  EvaluationOptions options;
  options.num_folds = 2;
  const EvaluationResult result = CrossValidate(data, faulty, options);
  for (const auto& fold : result.folds) {
    EXPECT_TRUE(fold.trained);
    EXPECT_EQ(fold.num_failed_predictions, fold.num_test);
    EXPECT_NE(fold.failure.find("injected predict failure"), std::string::npos);
  }
}

TEST(FaultInjection, GarbagePredictionsAreClampedToValidMetrics) {
  const Dataset data = testing::MakeToyDataset(10, 16);
  FaultOptions faults;
  faults.garbage_prediction_rate = 1.0;  // impossible label, prefix > length
  FaultyClassifier faulty(std::make_unique<SlowClassifier>(0.0, 0.0), faults);

  EvaluationOptions options;
  options.num_folds = 2;
  const EvaluationResult result = CrossValidate(data, faulty, options);
  for (const auto& fold : result.folds) {
    EXPECT_TRUE(fold.trained);
    EXPECT_EQ(fold.scores.accuracy, 0.0);      // impossible label never matches
    EXPECT_LE(fold.scores.earliness, 1.0);     // prefix clamped to length
    EXPECT_TRUE(std::isfinite(fold.scores.harmonic_mean));
  }
}

TEST(FaultInjection, DeadlineOverrunInjectionTripsTrainBudget) {
  const Dataset data = testing::MakeToyDataset(8, 12);
  FaultOptions faults;
  faults.fit_delay_seconds = 0.05;
  FaultyClassifier faulty(std::make_unique<SlowClassifier>(0.0, 0.0), faults);

  EvaluationOptions options;
  options.num_folds = 2;
  options.train_budget_seconds = 0.005;
  const EvaluationResult result = CrossValidate(data, faulty, options);
  ASSERT_FALSE(result.folds.empty());
  EXPECT_FALSE(result.folds[0].trained);
  EXPECT_NE(result.folds[0].failure.find("train budget exceeded"),
            std::string::npos);
}

TEST(FaultInjection, FaultStreamIsDeterministic) {
  FaultOptions faults;
  faults.seed = 99;
  faults.predict_failure_rate = 0.5;
  const TimeSeries series = TimeSeries::Univariate({0.0, 1.0, 2.0});
  const Dataset train = testing::MakeToyDataset(4, 8);

  std::vector<bool> first, second;
  for (int run = 0; run < 2; ++run) {
    FaultyClassifier faulty(std::make_unique<SlowClassifier>(0.0, 0.0), faults);
    ASSERT_TRUE(faulty.Fit(train).ok());
    auto& outcomes = run == 0 ? first : second;
    for (int i = 0; i < 16; ++i) {
      outcomes.push_back(faulty.PredictEarly(series).ok());
    }
  }
  EXPECT_EQ(first, second);
}

TEST(FaultInjection, StreamingSessionSurvivesFaultyClassifier) {
  const Dataset train = testing::MakeToyDataset(6, 10);
  FaultOptions faults;
  faults.predict_failure_rate = 1.0;
  FaultyClassifier faulty(std::make_unique<SlowClassifier>(0.0, 0.0), faults);
  ASSERT_TRUE(faulty.Fit(train).ok());

  StreamingSession session(faulty, 1);
  auto out = session.Push({1.0});
  EXPECT_FALSE(out.ok());  // the error surfaces as a Status, never a crash
  EXPECT_EQ(session.observed(), 1u);
  EXPECT_FALSE(session.decision().has_value());
  EXPECT_FALSE(session.Finish().ok());
}

TEST(FaultInjection, NaNObservationsAreInjectedAndRepairable) {
  const Dataset clean = testing::MakeToyDataset(10, 20);
  Dataset dirty = InjectMissingValues(clean, /*rate=*/0.25, /*seed=*/5);
  ASSERT_EQ(dirty.size(), clean.size());

  size_t with_nans = 0;
  for (size_t i = 0; i < dirty.size(); ++i) {
    if (dirty.instance(i).HasMissingValues()) ++with_nans;
  }
  EXPECT_GT(with_nans, 0u);

  // The paper's Sec. 5.1 repair rule removes every injected NaN.
  dirty.FillMissingValues();
  for (size_t i = 0; i < dirty.size(); ++i) {
    EXPECT_FALSE(dirty.instance(i).HasMissingValues());
  }
}

TEST(FaultInjection, EvaluationSurvivesRawNaNObservations) {
  // Even without repair, an evaluation over a NaN-riddled dataset must come
  // back with a structured result, never abort.
  const Dataset dirty =
      InjectMissingValues(testing::MakeToyDataset(8, 12), 0.1, 11);
  SlowClassifier quick(0.0, 0.0);
  EvaluationOptions options;
  options.num_folds = 2;
  const EvaluationResult result = CrossValidate(dirty, quick, options);
  EXPECT_EQ(result.folds.size(), 2u);
}

// ---------------------------------------------------------------------------
// Campaign journal crash-safety (mini-campaign: ECTS on DodgerLoopGame)
// ---------------------------------------------------------------------------

bench::CampaignConfig MiniConfig(const std::string& cache_name) {
  bench::CampaignConfig config;
  config.algorithms = {"ECTS"};
  config.datasets = {"DodgerLoopGame"};
  config.folds = 2;
  config.height_scale = 1.0;
  config.train_budget_seconds = 30.0;
  config.cache_path = ::testing::TempDir() + cache_name;
  std::remove(config.cache_path.c_str());
  std::remove((config.cache_path + ".stale").c_str());
  return config;
}

TEST(CampaignJournal, RoundTripsCellsThroughTheJournal) {
  auto config = MiniConfig("journal_roundtrip.csv");
  bench::Campaign first(config);
  first.Run();
  const bench::CampaignCell* computed = first.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(computed, nullptr);
  EXPECT_TRUE(computed->trained);

  // report_only proves the cell comes back from the journal, not a recompute.
  auto reload_config = config;
  reload_config.report_only = true;
  bench::Campaign reloaded(reload_config);
  reloaded.Run();
  const bench::CampaignCell* loaded = reloaded.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(loaded->trained);
  EXPECT_NEAR(loaded->accuracy, computed->accuracy, 1e-9);
  EXPECT_NEAR(loaded->harmonic_mean, computed->harmonic_mean, 1e-9);
}

TEST(CampaignJournal, TruncatedTrailingRowIsSkippedAndRecomputed) {
  auto config = MiniConfig("journal_truncated.csv");
  {
    // A journal whose only row was cut off by a mid-write crash.
    const auto header = bench::JournalHeaderForConfig(config);
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    std::ofstream out(config.cache_path);
    out << *header << "\n";
    out << "ECTS,DodgerLoopGame,1,0.93";  // no sentinel, no newline
  }
  bench::Campaign campaign(config);
  campaign.Run();  // must skip the torn row and recompute the cell
  const bench::CampaignCell* cell = campaign.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(cell, nullptr);
  EXPECT_TRUE(cell->trained);

  // The rewritten journal is fully loadable afterwards.
  auto reload_config = config;
  reload_config.report_only = true;
  bench::Campaign reloaded(reload_config);
  reloaded.Run();
  EXPECT_NE(reloaded.Find("ECTS", "DodgerLoopGame"), nullptr);
}

TEST(CampaignJournal, StaleFingerprintIsRotatedAsideNotAppendedTo) {
  auto config = MiniConfig("journal_stale.csv");
  {
    std::ofstream out(config.cache_path);
    out << "# v1 some-older-configuration\n";
    out << "ECTS,DodgerLoopGame,1,0.5,0.5,0.5,0.5,1,0.001,\n";
  }
  bench::Campaign campaign(config);
  campaign.Run();

  // The old journal was rotated aside, not appended to under its old header.
  std::ifstream stale(config.cache_path + ".stale");
  ASSERT_TRUE(stale.good());
  std::string stale_header;
  std::getline(stale, stale_header);
  EXPECT_EQ(stale_header, "# v1 some-older-configuration");

  // The fresh journal carries this config's header (config fingerprint plus
  // the combined dataset fingerprint) and loads cleanly.
  const auto expected_header = bench::JournalHeaderForConfig(config);
  ASSERT_TRUE(expected_header.ok()) << expected_header.status().ToString();
  std::ifstream fresh(config.cache_path);
  ASSERT_TRUE(fresh.good());
  std::string fresh_header;
  std::getline(fresh, fresh_header);
  EXPECT_EQ(fresh_header, *expected_header);

  auto reload_config = config;
  reload_config.report_only = true;
  bench::Campaign reloaded(reload_config);
  reloaded.Run();
  const bench::CampaignCell* cell = reloaded.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(cell, nullptr);
  EXPECT_TRUE(cell->trained);
}

TEST(CampaignJournal, FailedCellsRoundTripWithFailureStrings) {
  auto config = MiniConfig("journal_failed.csv");
  config.train_budget_seconds = 0.0;  // every Fit dies on an expired deadline
  bench::Campaign campaign(config);
  campaign.Run();
  const bench::CampaignCell* cell = campaign.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(cell, nullptr);
  EXPECT_FALSE(cell->trained);
  EXPECT_NE(cell->failure.find("train budget exceeded"), std::string::npos);

  auto reload_config = config;
  reload_config.report_only = true;
  bench::Campaign reloaded(reload_config);
  reloaded.Run();
  const bench::CampaignCell* loaded = reloaded.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(loaded, nullptr);
  EXPECT_FALSE(loaded->trained);
  EXPECT_EQ(loaded->failure, cell->failure);
}

TEST(CampaignJournal, PredictDeadlineOverrunsSurfaceInTheCell) {
  auto config = MiniConfig("journal_predict_overrun.csv");
  config.predict_budget_seconds = 0.0;  // every prediction expires instantly
  bench::Campaign campaign(config);
  campaign.Run();
  const bench::CampaignCell* cell = campaign.Find("ECTS", "DodgerLoopGame");
  ASSERT_NE(cell, nullptr);
  EXPECT_TRUE(cell->trained);  // training was unaffected
  EXPECT_NE(cell->failure.find("predict budget exceeded"), std::string::npos);
  EXPECT_EQ(cell->accuracy, 0.0);  // every instance degraded to a miss
}

}  // namespace
}  // namespace etsc
