#include "algos/strut.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tsc/minirocket.h"
#include "tsc/weasel.h"

namespace etsc {
namespace {

using testing::EarlyAccuracy;
using testing::MakeToyDataset;
using testing::MakeToyMultivariate;

TEST(Strut, TruncationPointWithinHorizon) {
  Dataset d = MakeToyDataset(20, 40);
  StrutClassifier model(std::make_unique<MiniRocketClassifier>());
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(model.truncation_point(), 2u);
  EXPECT_LE(model.truncation_point(), 40u);
}

TEST(Strut, EveryPredictionConsumesTheChosenPrefix) {
  Dataset d = MakeToyDataset(15, 30);
  StrutClassifier model(std::make_unique<MiniRocketClassifier>());
  ASSERT_TRUE(model.Fit(d).ok());
  for (size_t i = 0; i < d.size(); ++i) {
    auto pred = model.PredictEarly(d.instance(i));
    ASSERT_TRUE(pred.ok());
    EXPECT_EQ(pred->prefix_length, model.truncation_point());
  }
}

TEST(Strut, HarmonicMeanMetricPrefersEarlyOnEarlySignal) {
  // Class signal available from t = 0: the HM-optimal truncation point is
  // well before the end.
  Dataset d = MakeToyDataset(25, 40, 0.0, 3, 0.05);
  StrutOptions options;
  options.metric = StrutMetric::kHarmonicMean;
  StrutClassifier model(std::make_unique<MiniRocketClassifier>(), options);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_LT(model.truncation_point(), 30u);
  EXPECT_GE(EarlyAccuracy(model, d), 0.85);
}

TEST(Strut, LateSignalPushesTruncationLater) {
  Dataset early_d = MakeToyDataset(25, 40, 0.0, 3, 0.05);
  Dataset late_d = MakeToyDataset(25, 40, 0.7, 3, 0.05);
  StrutClassifier early_m(std::make_unique<MiniRocketClassifier>());
  StrutClassifier late_m(std::make_unique<MiniRocketClassifier>());
  ASSERT_TRUE(early_m.Fit(early_d).ok());
  ASSERT_TRUE(late_m.Fit(late_d).ok());
  EXPECT_LT(early_m.truncation_point(), late_m.truncation_point());
}

TEST(Strut, AccuracyMetricRuns) {
  Dataset d = MakeToyDataset(15, 30);
  StrutOptions options;
  options.metric = StrutMetric::kAccuracy;
  StrutClassifier model(std::make_unique<MiniRocketClassifier>(), options);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(EarlyAccuracy(model, d), 0.9);
}

TEST(Strut, F1MetricRuns) {
  Dataset d = MakeToyDataset(15, 30);
  StrutOptions options;
  options.metric = StrutMetric::kF1;
  StrutClassifier model(std::make_unique<MiniRocketClassifier>(), options);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(EarlyAccuracy(model, d), 0.9);
}

TEST(Strut, GridSearchMatchesFractions) {
  Dataset d = MakeToyDataset(15, 40);
  StrutOptions options;
  options.search = StrutSearch::kGrid;
  options.fractions = {0.5};
  StrutClassifier model(std::make_unique<MiniRocketClassifier>(), options);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_EQ(model.truncation_point(), 20u);
}

TEST(Strut, BinaryRefinementNeverLaterThanGridBest) {
  Dataset d = MakeToyDataset(25, 40, 0.0, 3, 0.05);
  StrutOptions grid;
  grid.search = StrutSearch::kGrid;
  StrutOptions binary = grid;
  binary.search = StrutSearch::kBinary;
  StrutClassifier g(std::make_unique<MiniRocketClassifier>(), grid);
  StrutClassifier b(std::make_unique<MiniRocketClassifier>(), binary);
  ASSERT_TRUE(g.Fit(d).ok());
  ASSERT_TRUE(b.Fit(d).ok());
  EXPECT_LE(b.truncation_point(), g.truncation_point());
}

TEST(Strut, NamesFollowPaperConventions) {
  EXPECT_EQ(MakeStrutWeasel(false)->name(), "S-WEASEL");
  EXPECT_EQ(MakeStrutMiniRocket()->name(), "S-MINI");
  EXPECT_EQ(MakeStrutMlstm()->name(), "S-MLSTM");
}

TEST(Strut, AdaptiveWeaselHandlesBothDimensionalities) {
  auto uni = MakeStrutWeasel(false);
  ASSERT_TRUE(uni->Fit(MakeToyDataset(15, 30)).ok());
  auto mv = MakeStrutWeasel(true);
  ASSERT_TRUE(mv->Fit(MakeToyMultivariate(12, 24)).ok());
  EXPECT_TRUE(mv->SupportsMultivariate());
}

TEST(Strut, TooFewSeriesRejected) {
  Dataset d("few", {TimeSeries::Univariate({1, 2, 3})}, {0});
  StrutClassifier model(std::make_unique<MiniRocketClassifier>());
  EXPECT_FALSE(model.Fit(d).ok());
}

TEST(Strut, PredictBeforeFitFails) {
  StrutClassifier model(std::make_unique<MiniRocketClassifier>());
  EXPECT_FALSE(model.PredictEarly(TimeSeries::Univariate({1.0})).ok());
}

TEST(Strut, BudgetExhaustionReported) {
  Dataset d = MakeToyDataset(20, 40);
  StrutClassifier model(std::make_unique<MiniRocketClassifier>());
  model.set_train_budget_seconds(0.0);
  EXPECT_EQ(model.Fit(d).code(), StatusCode::kDeadlineExceeded);
}

TEST(Strut, CloneUntrainedKeepsNameAndConfig) {
  StrutOptions options;
  options.metric = StrutMetric::kAccuracy;
  StrutClassifier model(std::make_unique<MiniRocketClassifier>(), options,
                        "S-CUSTOM");
  auto clone = model.CloneUntrained();
  EXPECT_EQ(clone->name(), "S-CUSTOM");
}

TEST(Strut, ShorterTestSeriesConsumesWhatExists) {
  Dataset d = MakeToyDataset(15, 30);
  StrutClassifier model(std::make_unique<MiniRocketClassifier>());
  ASSERT_TRUE(model.Fit(d).ok());
  const size_t t = model.truncation_point();
  auto pred = model.PredictEarly(d.instance(0).Prefix(t / 2 + 1));
  ASSERT_TRUE(pred.ok());
  EXPECT_LE(pred->prefix_length, t / 2 + 1);
}

}  // namespace
}  // namespace etsc
