// Tests for the future-work extensions (paper Sec. 7): alternative voting
// schemes for univariate algorithms on multivariate data, and grid-search
// hyper-parameter tuning.

#include <gtest/gtest.h>

#include <memory>

#include "algos/ects.h"
#include "core/tuner.h"
#include "core/voting_schemes.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

/// Deterministic stub voter: variable v predicts label (v % 2) after v+1
/// points, so scheme outcomes can be asserted exactly. The wrapper fits one
/// clone per variable in order, so a counter shared across clones hands voter
/// v the hint v.
class PatternVoter : public EarlyClassifier {
 public:
  explicit PatternVoter(std::shared_ptr<size_t> counter =
                            std::make_shared<size_t>(0))
      : counter_(std::move(counter)) {}

  Status Fit(const Dataset& train) override {
    variable_hint_ = (*counter_)++;
    (void)train;
    return Status::OK();
  }
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override {
    const size_t consume = std::min(series.length(), variable_hint_ + 1);
    return EarlyPrediction{static_cast<int>(variable_hint_ % 2), consume};
  }
  std::string name() const override { return "pattern"; }
  bool SupportsMultivariate() const override { return false; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<PatternVoter>(counter_);
  }

 private:
  std::shared_ptr<size_t> counter_;
  size_t variable_hint_ = 0;
};

Dataset ThreeVariableDataset() {
  Dataset d("3v", {}, {});
  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    std::vector<std::vector<double>> channels(3, std::vector<double>(10));
    for (auto& c : channels) {
      for (double& x : c) x = rng.Gaussian();
    }
    d.Add(TimeSeries::FromChannels(std::move(channels)).value(), i % 2);
  }
  return d;
}

class VotingSchemeTest : public ::testing::Test {
 protected:
  std::unique_ptr<ConfigurableVotingClassifier> Make(VotingScheme scheme) {
    // Reset the stub counter through a fresh prototype chain.
    auto proto = std::make_unique<PatternVoter>();
    auto wrapper =
        std::make_unique<ConfigurableVotingClassifier>(std::move(proto), scheme);
    return wrapper;
  }
};

// Voters predict: v0 -> label 0 after 1 pt, v1 -> label 1 after 2 pts,
// v2 -> label 0 after 3 pts. Majority = 0; worst earliness = 3; earliest = v0.
TEST_F(VotingSchemeTest, MajorityWorstMatchesPaperScheme) {
  auto wrapper = Make(VotingScheme::kMajorityWorstEarliness);
  Dataset d = ThreeVariableDataset();
  ASSERT_TRUE(wrapper->Fit(d).ok());
  auto pred = wrapper->PredictEarly(d.instance(0));
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->label, 0);
  EXPECT_EQ(pred->prefix_length, 3u);
}

TEST_F(VotingSchemeTest, MajorityMeanUsesMeanPrefix) {
  auto wrapper = Make(VotingScheme::kMajorityMeanEarliness);
  Dataset d = ThreeVariableDataset();
  ASSERT_TRUE(wrapper->Fit(d).ok());
  auto pred = wrapper->PredictEarly(d.instance(0));
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->label, 0);
  EXPECT_EQ(pred->prefix_length, 2u);  // mean of 1,2,3
}

TEST_F(VotingSchemeTest, EarliestVoterWins) {
  auto wrapper = Make(VotingScheme::kEarliestVoter);
  Dataset d = ThreeVariableDataset();
  ASSERT_TRUE(wrapper->Fit(d).ok());
  auto pred = wrapper->PredictEarly(d.instance(0));
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->label, 0);          // v0 is earliest
  EXPECT_EQ(pred->prefix_length, 1u);
}

TEST_F(VotingSchemeTest, EarlinessWeightedFavorsEarlyVoters) {
  auto wrapper = Make(VotingScheme::kEarlinessWeighted);
  Dataset d = ThreeVariableDataset();
  ASSERT_TRUE(wrapper->Fit(d).ok());
  auto pred = wrapper->PredictEarly(d.instance(0));
  ASSERT_TRUE(pred.ok());
  // Weights: label0 = 1/1 + 1/3 = 1.33, label1 = 1/2 -> label 0.
  EXPECT_EQ(pred->label, 0);
}

TEST_F(VotingSchemeTest, NamesIncludeScheme) {
  auto wrapper = Make(VotingScheme::kEarliestVoter);
  EXPECT_EQ(wrapper->name(), "pattern+earliest-voter");
  EXPECT_EQ(VotingSchemeName(VotingScheme::kMajorityWorstEarliness),
            "majority-worst");
}

TEST_F(VotingSchemeTest, RealAlgorithmAllSchemesWork) {
  Dataset mv = testing::MakeToyMultivariate(10, 16, 2);
  for (VotingScheme scheme :
       {VotingScheme::kMajorityWorstEarliness,
        VotingScheme::kMajorityMeanEarliness, VotingScheme::kEarliestVoter,
        VotingScheme::kEarlinessWeighted}) {
    ConfigurableVotingClassifier wrapper(std::make_unique<EctsClassifier>(),
                                         scheme);
    ASSERT_TRUE(wrapper.Fit(mv).ok()) << VotingSchemeName(scheme);
    EXPECT_GE(testing::EarlyAccuracy(wrapper, mv), 0.7)
        << VotingSchemeName(scheme);
  }
}

TEST(Tuner, PicksTheBetterCandidate) {
  Dataset d = testing::MakeToyDataset(15, 24);
  std::vector<TunerCandidate> grid;
  // A strong candidate and a deliberately crippled one (support so high the
  // RNN rule never fires and MPLs stay at L -> earliness 1 -> HM 0).
  grid.push_back({"ects-good", [] { return std::make_unique<EctsClassifier>(); }});
  grid.push_back({"ects-late", [] {
                    EctsOptions options;
                    options.support = 100000;
                    options.max_merge_distance_factor = 1e-9;
                    return std::make_unique<EctsClassifier>(options);
                  }});
  auto verdict = TuneEarlyClassifier(d, grid);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->best_name, "ects-good");
  EXPECT_EQ(verdict->leaderboard.size(), 2u);
  ASSERT_NE(verdict->best_model, nullptr);
  // The returned model is trained and usable.
  EXPECT_GE(testing::EarlyAccuracy(*verdict->best_model, d), 0.8);
}

TEST(Tuner, EmptyGridRejected) {
  Dataset d = testing::MakeToyDataset(5, 10);
  EXPECT_FALSE(TuneEarlyClassifier(d, {}).ok());
}

TEST(Tuner, AllCandidatesFailingReported) {
  Dataset d = testing::MakeToyDataset(5, 10);
  std::vector<TunerCandidate> grid;
  grid.push_back({"null", [] { return std::unique_ptr<EarlyClassifier>(); }});
  auto verdict = TuneEarlyClassifier(d, grid);
  EXPECT_FALSE(verdict.ok());
}

TEST(Tuner, ObjectiveSelectable) {
  Dataset d = testing::MakeToyDataset(12, 20);
  std::vector<TunerCandidate> grid;
  grid.push_back({"ects", [] { return std::make_unique<EctsClassifier>(); }});
  TunerOptions options;
  options.objective = TunerObjective::kAccuracy;
  auto verdict = TuneEarlyClassifier(d, grid, options);
  ASSERT_TRUE(verdict.ok());
  EXPECT_GT(verdict->best_score, 0.8);
}

}  // namespace
}  // namespace etsc
