// Persistence tests: the versioned ETSCMODL model format (core/serialize.h),
// Save/LoadFitted on every registered algorithm, hostile-stream handling, the
// fitted-model cache, and dataset fingerprints.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algos/ects.h"
#include "algos/registrations.h"
#include "core/counters.h"
#include "core/dataset.h"
#include "core/evaluation.h"
#include "core/model_cache.h"
#include "core/registry.h"
#include "test_util.h"

namespace etsc {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterBuiltinClassifiers(); }
};

Dataset TrainSet() { return testing::MakeToyDataset(12, 32, 0.0, 3); }
Dataset HeldOutSet() { return testing::MakeToyDataset(8, 32, 0.0, 17); }

// ---------------------------------------------------------------------------
// Round trip: every registered algorithm
// ---------------------------------------------------------------------------

TEST_F(SerializationTest, EveryRegisteredAlgorithmRoundTripsBitIdentically) {
  const Dataset train = TrainSet();
  const Dataset test = HeldOutSet();
  for (const auto& name : ClassifierRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    auto original = ClassifierRegistry::Global().Create(name);
    ASSERT_TRUE(original.ok()) << original.status().ToString();
    const Status fitted = (*original)->Fit(train);
    ASSERT_TRUE(fitted.ok()) << fitted.ToString();

    std::stringstream stream;
    const Status saved = (*original)->Save(stream);
    ASSERT_TRUE(saved.ok()) << saved.ToString();

    // A FRESH registry instance — nothing is shared with the original.
    auto restored = ClassifierRegistry::Global().Create(name);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    const Status loaded = (*restored)->LoadFitted(stream);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();

    // The contract is bit-identity, not closeness: a restored model must
    // predict exactly what the original would, instance by instance.
    for (size_t i = 0; i < test.size(); ++i) {
      const auto a = (*original)->PredictEarly(test.instance(i));
      const auto b = (*restored)->PredictEarly(test.instance(i));
      ASSERT_EQ(a.ok(), b.ok()) << "instance " << i;
      if (!a.ok()) continue;
      EXPECT_EQ(a->label, b->label) << "instance " << i;
      EXPECT_EQ(a->prefix_length, b->prefix_length) << "instance " << i;
    }
    const FoldOutcome score_a = EvaluateFitted(test, **original);
    const FoldOutcome score_b = EvaluateFitted(test, **restored);
    EXPECT_EQ(score_a.scores.accuracy, score_b.scores.accuracy);
    EXPECT_EQ(score_a.scores.f1, score_b.scores.f1);
    EXPECT_EQ(score_a.scores.earliness, score_b.scores.earliness);
    EXPECT_EQ(score_a.scores.harmonic_mean, score_b.scores.harmonic_mean);
  }
}

// ---------------------------------------------------------------------------
// Hostile streams: errors, never UB or crashes
// ---------------------------------------------------------------------------

std::string SavedEctsModel() {
  EctsClassifier model;
  const Status fitted = model.Fit(testing::MakeToyDataset(6, 16));
  EXPECT_TRUE(fitted.ok()) << fitted.ToString();
  std::stringstream stream;
  EXPECT_TRUE(model.Save(stream).ok());
  return stream.str();
}

bool IsDataLossOrInvalid(const Status& status) {
  return status.code() == StatusCode::kDataLoss ||
         status.code() == StatusCode::kInvalidArgument;
}

TEST_F(SerializationTest, TruncatedStreamsFailCleanly) {
  const std::string bytes = SavedEctsModel();
  ASSERT_GT(bytes.size(), 32u);
  // Every interesting cut point: inside the magic, the header, the body, and
  // one byte short of complete.
  for (const size_t cut : std::vector<size_t>{0, 3, 9, 16, bytes.size() / 2,
                                              bytes.size() - 1}) {
    SCOPED_TRACE(cut);
    std::stringstream in(bytes.substr(0, cut));
    EctsClassifier model;
    const Status status = model.LoadFitted(in);
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(IsDataLossOrInvalid(status)) << status.ToString();
  }
}

TEST_F(SerializationTest, CorruptedBytesAreDetected) {
  const std::string bytes = SavedEctsModel();
  // Flip one byte at a spread of positions; the checksums (or the header
  // checks) must catch every one of them.
  for (const size_t pos : std::vector<size_t>{
           0, 9, bytes.size() / 4, bytes.size() / 2, bytes.size() - 2}) {
    SCOPED_TRACE(pos);
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5a);
    std::stringstream in(corrupt);
    EctsClassifier model;
    const Status status = model.LoadFitted(in);
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(IsDataLossOrInvalid(status)) << status.ToString();
  }
}

TEST_F(SerializationTest, GarbageStreamIsRejected) {
  std::stringstream in("this is not a model, not even close");
  EctsClassifier model;
  const Status status = model.LoadFitted(in);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsDataLossOrInvalid(status)) << status.ToString();
}

TEST_F(SerializationTest, FutureVersionIsInvalidArgument) {
  std::string bytes = SavedEctsModel();
  // Format: 8-byte magic, then the u32 version little-endian.
  bytes[8] = 99;
  std::stringstream in(bytes);
  EctsClassifier model;
  const Status status = model.LoadFitted(in);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
}

TEST_F(SerializationTest, WrongAlgorithmIsInvalidArgument) {
  const std::string bytes = SavedEctsModel();
  auto other = ClassifierRegistry::Global().Create("edsc");
  ASSERT_TRUE(other.ok());
  std::stringstream in(bytes);
  const Status status = (*other)->LoadFitted(in);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
}

TEST_F(SerializationTest, WrongConfigurationIsInvalidArgument) {
  const std::string bytes = SavedEctsModel();
  EctsOptions options;
  options.support = 2;  // differs from the saved model's support = 0
  EctsClassifier model(options);
  std::stringstream in(bytes);
  const Status status = model.LoadFitted(in);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
}

// ---------------------------------------------------------------------------
// Dataset fingerprints
// ---------------------------------------------------------------------------

TEST(DatasetFingerprint, DeterministicForIdenticalContent) {
  const Dataset a = testing::MakeToyDataset(5, 16, 0.0, 3);
  const Dataset b = testing::MakeToyDataset(5, 16, 0.0, 3);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(DatasetFingerprint, SensitiveToValuesLabelsAndName) {
  const Dataset base = testing::MakeToyDataset(5, 16, 0.0, 3);
  const Dataset other_values = testing::MakeToyDataset(5, 16, 0.0, 99);
  EXPECT_NE(base.Fingerprint(), other_values.Fingerprint());

  Dataset renamed = base;
  renamed.set_name("something-else");
  EXPECT_NE(base.Fingerprint(), renamed.Fingerprint());
}

// ---------------------------------------------------------------------------
// Fitted-model cache
// ---------------------------------------------------------------------------

std::string FreshCacheDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST_F(SerializationTest, WarmModelCacheSkipsEveryFit) {
  const Dataset data = testing::MakeToyDataset(10, 24, 0.0, 5);
  auto model = ClassifierRegistry::Global().Create("ects");
  ASSERT_TRUE(model.ok());

  EvaluationOptions options;
  options.num_folds = 3;
  options.seed = 7;
  options.model_cache =
      std::make_shared<ModelCache>(FreshCacheDir("model_cache_warm"));

  Counter& skipped = MetricRegistry::Global().counter("eval.fits_skipped");
  const uint64_t before = skipped.value();

  const EvaluationResult cold = CrossValidate(data, **model, options);
  ASSERT_TRUE(cold.trained());
  EXPECT_EQ(skipped.value(), before);  // empty cache: every fold really fits

  const EvaluationResult warm = CrossValidate(data, **model, options);
  ASSERT_TRUE(warm.trained());
  // The acceptance criterion: on the second run, EVERY fold comes from the
  // cache and no Fit runs at all.
  EXPECT_EQ(skipped.value() - before, options.num_folds);
  for (const auto& fold : warm.folds) {
    EXPECT_EQ(fold.train_seconds, 0.0);  // never fitted, nothing to time
  }

  // Cached folds score exactly like freshly trained ones.
  EXPECT_EQ(cold.MeanScores().accuracy, warm.MeanScores().accuracy);
  EXPECT_EQ(cold.MeanScores().f1, warm.MeanScores().f1);
  EXPECT_EQ(cold.MeanScores().earliness, warm.MeanScores().earliness);
  EXPECT_EQ(cold.MeanScores().harmonic_mean, warm.MeanScores().harmonic_mean);
}

TEST_F(SerializationTest, CacheKeyedBySeedAndFold) {
  const Dataset data = testing::MakeToyDataset(10, 24, 0.0, 5);
  auto model = ClassifierRegistry::Global().Create("ects");
  ASSERT_TRUE(model.ok());

  EvaluationOptions options;
  options.num_folds = 2;
  options.seed = 7;
  options.model_cache =
      std::make_shared<ModelCache>(FreshCacheDir("model_cache_seed"));

  Counter& skipped = MetricRegistry::Global().counter("eval.fits_skipped");
  CrossValidate(data, **model, options);
  const uint64_t after_cold = skipped.value();

  // A different seed draws different folds: its models must NOT be served
  // from the first seed's cache entries.
  options.seed = 8;
  CrossValidate(data, **model, options);
  EXPECT_EQ(skipped.value(), after_cold);
}

TEST_F(SerializationTest, UnloadableCacheEntryIsAMissNotAnError) {
  const Dataset data = testing::MakeToyDataset(6, 16);
  EctsClassifier model;
  ASSERT_TRUE(model.Fit(data).ok());

  const ModelCache cache(FreshCacheDir("model_cache_corrupt"));
  ModelCacheKey key;
  key.config_fingerprint = model.config_fingerprint();
  key.dataset_fingerprint = data.Fingerprint();
  key.fold = 0;
  key.num_folds = 3;
  key.seed = 7;
  ASSERT_TRUE(cache.Store(key, model).ok());

  EctsClassifier restored;
  EXPECT_TRUE(cache.TryLoad(key, &restored));

  // Overwrite the entry with garbage: loading must degrade to a miss so the
  // caller refits, never an error or a crash.
  std::ofstream(cache.EntryPath(key, model.name()), std::ios::trunc)
      << "garbage";
  EctsClassifier fresh;
  EXPECT_FALSE(cache.TryLoad(key, &fresh));
}

}  // namespace
}  // namespace etsc
