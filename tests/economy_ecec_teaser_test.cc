#include <gtest/gtest.h>

#include "algos/ecec.h"
#include "algos/economy_k.h"
#include "algos/teaser.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

using testing::EarlyAccuracy;
using testing::MakeToyDataset;
using testing::MakeToyMultivariate;

TEST(EconomyK, CheckpointsCoverHorizon) {
  Dataset d = MakeToyDataset(15, 40);
  EconomyKOptions options;
  options.max_checkpoints = 10;
  options.gbdt.num_rounds = 10;
  EconomyKClassifier model(options);
  ASSERT_TRUE(model.Fit(d).ok());
  ASSERT_FALSE(model.checkpoints().empty());
  EXPECT_EQ(model.checkpoints().back(), 40u);
  for (size_t i = 1; i < model.checkpoints().size(); ++i) {
    EXPECT_GT(model.checkpoints()[i], model.checkpoints()[i - 1]);
  }
}

TEST(EconomyK, ClusterGridSelectsOne) {
  Dataset d = MakeToyDataset(15, 30);
  EconomyKOptions options;
  options.cluster_grid = {1, 2, 3};
  options.max_checkpoints = 6;
  options.gbdt.num_rounds = 10;
  EconomyKClassifier model(options);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(model.chosen_clusters(), 1u);
  EXPECT_LE(model.chosen_clusters(), 3u);
}

TEST(EconomyK, HighTimeCostForcesEarlyDecisions) {
  Dataset d = MakeToyDataset(20, 40, 0.0, 3, 0.05);
  EconomyKOptions cheap;
  cheap.max_checkpoints = 8;
  cheap.gbdt.num_rounds = 10;
  EconomyKOptions costly = cheap;
  costly.time_cost = 0.05;   // waiting is expensive
  costly.lambda = 2.0;       // errors are cheap
  EconomyKClassifier patient(cheap), hasty(costly);
  ASSERT_TRUE(patient.Fit(d).ok());
  ASSERT_TRUE(hasty.Fit(d).ok());
  double patient_prefix = 0, hasty_prefix = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    patient_prefix +=
        static_cast<double>(patient.PredictEarly(d.instance(i))->prefix_length);
    hasty_prefix +=
        static_cast<double>(hasty.PredictEarly(d.instance(i))->prefix_length);
  }
  EXPECT_LE(hasty_prefix, patient_prefix);
}

TEST(EconomyK, RejectsMultivariate) {
  EconomyKClassifier model;
  EXPECT_FALSE(model.Fit(MakeToyMultivariate(5, 10)).ok());
}

TEST(EconomyK, PredictBeforeFitFails) {
  EconomyKClassifier model;
  EXPECT_FALSE(model.PredictEarly(TimeSeries::Univariate({1.0})).ok());
}

TEST(Ecec, PrefixGridMatchesCeilRule) {
  Dataset d = MakeToyDataset(12, 20);
  EcecOptions options;
  options.num_prefixes = 4;
  EcecClassifier model(options);
  ASSERT_TRUE(model.Fit(d).ok());
  // ceil(i*20/4) = 5, 10, 15, 20.
  EXPECT_EQ(model.prefix_lengths(),
            (std::vector<size_t>{5, 10, 15, 20}));
}

TEST(Ecec, ThresholdWithinUnitInterval) {
  Dataset d = MakeToyDataset(12, 20);
  EcecOptions options;
  options.num_prefixes = 4;
  EcecClassifier model(options);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GT(model.threshold(), 0.0);
  EXPECT_LE(model.threshold(), 1.0);
}

TEST(Ecec, AlphaShiftsEarliness) {
  Dataset d = MakeToyDataset(20, 40, 0.0, 3, 0.05);
  EcecOptions accurate;
  accurate.num_prefixes = 6;
  accurate.alpha = 0.99;  // accuracy-dominated cost
  EcecOptions eager = accurate;
  eager.alpha = 0.01;     // earliness-dominated cost
  EcecClassifier patient(accurate), hasty(eager);
  ASSERT_TRUE(patient.Fit(d).ok());
  ASSERT_TRUE(hasty.Fit(d).ok());
  double patient_prefix = 0, hasty_prefix = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    patient_prefix +=
        static_cast<double>(patient.PredictEarly(d.instance(i))->prefix_length);
    hasty_prefix +=
        static_cast<double>(hasty.PredictEarly(d.instance(i))->prefix_length);
  }
  EXPECT_LE(hasty_prefix, patient_prefix);
}

TEST(Ecec, BudgetExhaustionReported) {
  Dataset d = MakeToyDataset(20, 40);
  EcecClassifier model;
  model.set_train_budget_seconds(0.0);
  EXPECT_EQ(model.Fit(d).code(), StatusCode::kDeadlineExceeded);
}

TEST(Ecec, RejectsMultivariate) {
  EcecClassifier model;
  EXPECT_FALSE(model.Fit(MakeToyMultivariate(5, 10)).ok());
}

TEST(Teaser, ChoosesConsistencyVInGrid) {
  Dataset d = MakeToyDataset(15, 30);
  TeaserOptions options;
  options.num_prefixes = 5;
  TeaserClassifier model(options);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(model.chosen_v(), 1u);
  EXPECT_LE(model.chosen_v(), 5u);
}

TEST(Teaser, LastPrefixIsFullLength) {
  Dataset d = MakeToyDataset(12, 24);
  TeaserOptions options;
  options.num_prefixes = 4;
  TeaserClassifier model(options);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_EQ(model.prefix_lengths().back(), 24u);
}

TEST(Teaser, ZNormVariantRuns) {
  Dataset d = MakeToyDataset(15, 30);
  TeaserOptions options;
  options.num_prefixes = 5;
  options.z_normalize = true;
  TeaserClassifier model(options);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_GE(EarlyAccuracy(model, d), 0.7);
}

TEST(Teaser, BudgetExhaustionReported) {
  Dataset d = MakeToyDataset(20, 40);
  TeaserClassifier model;
  model.set_train_budget_seconds(0.0);
  EXPECT_EQ(model.Fit(d).code(), StatusCode::kDeadlineExceeded);
}

TEST(Teaser, PredictBeforeFitFails) {
  TeaserClassifier model;
  EXPECT_FALSE(model.PredictEarly(TimeSeries::Univariate({1.0})).ok());
}

TEST(Teaser, SeriesShorterThanFirstPrefixHandled) {
  Dataset d = MakeToyDataset(15, 30);
  TeaserOptions options;
  options.num_prefixes = 3;
  TeaserClassifier model(options);
  ASSERT_TRUE(model.Fit(d).ok());
  auto pred = model.PredictEarly(d.instance(0).Prefix(5));
  ASSERT_TRUE(pred.ok());
  EXPECT_LE(pred->prefix_length, 5u);
}

}  // namespace
}  // namespace etsc
