#include "core/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "tests/test_util.h"

namespace etsc {
namespace {

TEST(Csv, ParseUnivariate) {
  auto result = ParseCsv("1,0.5,1.5,2.5\n0,3,2,1\n");
  ASSERT_TRUE(result.ok());
  const Dataset& d = *result;
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.label(0), 1);
  EXPECT_EQ(d.label(1), 0);
  EXPECT_DOUBLE_EQ(d.instance(0).at(0, 2), 2.5);
}

TEST(Csv, ParseMultivariateGroupsRows) {
  auto result = ParseCsv("1,1,2\n1,3,4\n0,5,6\n0,7,8\n", 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ(result->NumVariables(), 2u);
  EXPECT_DOUBLE_EQ(result->instance(0).at(1, 1), 4.0);
}

TEST(Csv, RejectsLabelMismatchWithinExample) {
  auto result = ParseCsv("1,1,2\n0,3,4\n", 2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(Csv, RejectsIncompleteTrailingExample) {
  auto result = ParseCsv("1,1,2\n1,3,4\n0,5,6\n", 2);
  EXPECT_FALSE(result.ok());
}

TEST(Csv, MissingValuesParseAsNaN) {
  auto result = ParseCsv("1,1.0,NaN,3.0\n1,1.0,,3.0\n1,1.0,?,3.0\n");
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isnan(result->instance(i).at(0, 1))) << i;
  }
}

TEST(Csv, RejectsGarbageNumericField) {
  auto result = ParseCsv("1,abc\n");
  EXPECT_FALSE(result.ok());
}

TEST(Csv, RejectsBadLabel) {
  auto result = ParseCsv("xyz,1,2\n");
  EXPECT_FALSE(result.ok());
}

TEST(Csv, SkipsBlankLines) {
  auto result = ParseCsv("1,1,2\n\n   \n0,3,4\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(Csv, NegativeLabelsSupported) {
  auto result = ParseCsv("-1,1,2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->label(0), -1);
}

TEST(Csv, RoundTripUnivariate) {
  Dataset original = testing::MakeToyDataset(4, 10);
  auto reparsed = ParseCsv(ToCsv(original));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed->label(i), original.label(i));
    for (size_t t = 0; t < original.instance(i).length(); ++t) {
      EXPECT_NEAR(reparsed->instance(i).at(0, t), original.instance(i).at(0, t),
                  1e-9);
    }
  }
}

TEST(Csv, RoundTripMultivariate) {
  Dataset original = testing::MakeToyMultivariate(3, 8, 2);
  auto reparsed = ParseCsv(ToCsv(original), original.NumVariables());
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), original.size());
  EXPECT_EQ(reparsed->NumVariables(), 2u);
}

TEST(Csv, SaveAndLoadFile) {
  Dataset original = testing::MakeToyDataset(3, 6);
  const std::string path = ::testing::TempDir() + "/etsc_csv_test.csv";
  ASSERT_TRUE(SaveCsv(original, path).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), original.size());
  std::remove(path.c_str());
}

TEST(Csv, LoadMissingFileFails) {
  auto result = LoadCsv("/nonexistent/file.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(Csv, NaNSurvivesRoundTrip) {
  Dataset d("nan", {}, {});
  d.Add(TimeSeries::Univariate({1.0, std::nan(""), 3.0}), 0);
  auto reparsed = ParseCsv(ToCsv(d));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(std::isnan(reparsed->instance(0).at(0, 1)));
}

TEST(Csv, ZeroVariablesRejected) {
  auto result = ParseCsv("1,2\n", 0);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace etsc
