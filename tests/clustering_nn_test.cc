// Agglomerative clustering and nearest/reverse-nearest-neighbor structures
// (the ECTS substrate).

#include <gtest/gtest.h>

#include <vector>

#include "ml/hierarchical.h"
#include "ml/nn_search.h"

namespace etsc {
namespace {

std::vector<std::vector<double>> DistanceMatrix(
    const std::vector<double>& points) {
  const size_t n = points.size();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) d[i][j] = std::abs(points[i] - points[j]);
  }
  return d;
}

TEST(Agglomerative, MergesNearestFirst) {
  // Points 0,1 close; 10 far.
  const auto merges =
      AgglomerativeCluster(DistanceMatrix({0.0, 1.0, 10.0}), Linkage::kSingle);
  ASSERT_TRUE(merges.ok());
  ASSERT_EQ(merges->size(), 2u);
  EXPECT_EQ((*merges)[0].members, (std::vector<size_t>{0, 1}));
  EXPECT_DOUBLE_EQ((*merges)[0].distance, 1.0);
  EXPECT_EQ((*merges)[1].members, (std::vector<size_t>{0, 1, 2}));
}

TEST(Agglomerative, MergedIdsFollowScipyConvention) {
  const auto merges =
      AgglomerativeCluster(DistanceMatrix({0.0, 1.0, 10.0}), Linkage::kSingle);
  ASSERT_TRUE(merges.ok());
  EXPECT_EQ((*merges)[0].merged_id, 3u);
  EXPECT_EQ((*merges)[1].merged_id, 4u);
}

TEST(Agglomerative, CompleteLinkageDiffers) {
  // Chain 0 - 2 - 4: single linkage merges greedily along the chain; complete
  // linkage produces larger inter-cluster distances at later merges.
  const auto chain = DistanceMatrix({0.0, 2.0, 4.0});
  const auto single = AgglomerativeCluster(chain, Linkage::kSingle);
  const auto complete = AgglomerativeCluster(chain, Linkage::kComplete);
  ASSERT_TRUE(single.ok() && complete.ok());
  EXPECT_DOUBLE_EQ((*single)[1].distance, 2.0);
  EXPECT_DOUBLE_EQ((*complete)[1].distance, 4.0);
}

TEST(Agglomerative, AverageLinkage) {
  const auto merges =
      AgglomerativeCluster(DistanceMatrix({0.0, 2.0, 4.0}), Linkage::kAverage);
  ASSERT_TRUE(merges.ok());
  EXPECT_DOUBLE_EQ((*merges)[1].distance, 3.0);  // mean of 2 and 4
}

TEST(Agglomerative, RejectsNonSquare) {
  auto merges = AgglomerativeCluster({{0.0, 1.0}}, Linkage::kSingle);
  EXPECT_FALSE(merges.ok());
}

TEST(Agglomerative, EmptyMatrixRejected) {
  EXPECT_FALSE(AgglomerativeCluster({}, Linkage::kSingle).ok());
}

TEST(CutDendrogramFn, ProducesKClusters) {
  const auto merges =
      AgglomerativeCluster(DistanceMatrix({0.0, 1.0, 10.0, 11.0}), Linkage::kSingle);
  ASSERT_TRUE(merges.ok());
  auto labels = CutDendrogram(*merges, 4, 2);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ((*labels)[0], (*labels)[1]);
  EXPECT_EQ((*labels)[2], (*labels)[3]);
  EXPECT_NE((*labels)[0], (*labels)[2]);
}

TEST(CutDendrogramFn, KEqualsNIsIdentityPartition) {
  const auto merges =
      AgglomerativeCluster(DistanceMatrix({0.0, 1.0, 2.0}), Linkage::kSingle);
  ASSERT_TRUE(merges.ok());
  auto labels = CutDendrogram(*merges, 3, 3);
  ASSERT_TRUE(labels.ok());
  EXPECT_NE((*labels)[0], (*labels)[1]);
  EXPECT_NE((*labels)[1], (*labels)[2]);
}

TEST(CutDendrogramFn, RejectsBadK) {
  const auto merges =
      AgglomerativeCluster(DistanceMatrix({0.0, 1.0}), Linkage::kSingle);
  ASSERT_TRUE(merges.ok());
  EXPECT_FALSE(CutDendrogram(*merges, 2, 0).ok());
  EXPECT_FALSE(CutDendrogram(*merges, 2, 3).ok());
}

TEST(NearestNeighbor, ExcludesSelf) {
  const std::vector<std::vector<double>> points{{0.0}, {0.1}, {5.0}};
  EXPECT_EQ(NearestNeighbor(points, points[0], 1, 0), 1u);
  EXPECT_EQ(NearestNeighbor(points, points[2], 1, 2), 1u);
}

TEST(NearestNeighbor, PrefixLengthChangesAnswer) {
  // Under prefix 1, point 1 is nearest to 0; under full length, point 2 is.
  const std::vector<std::vector<double>> points{
      {0.0, 0.0}, {0.1, 100.0}, {0.5, 0.0}};
  EXPECT_EQ(NearestNeighbor(points, points[0], 1, 0), 1u);
  EXPECT_EQ(NearestNeighbor(points, points[0], 2, 0), 2u);
}

TEST(AllNearestNeighborsFn, MutualPair) {
  const std::vector<std::vector<double>> points{{0.0}, {1.0}, {10.0}};
  const auto nn = AllNearestNeighbors(points, 1);
  EXPECT_EQ(nn[0], 1u);
  EXPECT_EQ(nn[1], 0u);
  EXPECT_EQ(nn[2], 1u);
}

TEST(ReverseNearestNeighborsFn, InDegreeStructure) {
  // nn: 0->1, 1->0, 2->1  =>  rnn[1] = {0, 2}, rnn[0] = {1}, rnn[2] = {}.
  const auto rnn = ReverseNearestNeighbors({1, 0, 1});
  EXPECT_EQ(rnn[0], (std::vector<size_t>{1}));
  EXPECT_EQ(rnn[1], (std::vector<size_t>{0, 2}));
  EXPECT_TRUE(rnn[2].empty());
}

}  // namespace
}  // namespace etsc
