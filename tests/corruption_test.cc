// Corruption-hardening tests: every untrusted byte stream the framework
// consumes — ETSCMODL model files, campaign journals, JSON reports, ARFF and
// CSV datasets — must fail with a clean Status (or load nothing) under
// deterministic bit-flip and truncation corpora. Never a crash, never UB;
// this test runs under ASan and UBSan in check.sh. All corruption positions
// are derived arithmetically from the payload size, no wall-clock and no
// unseeded randomness, so failures reproduce exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algos/ects.h"
#include "bench/bench_common.h"
#include "core/arff.h"
#include "core/counters.h"
#include "core/csv.h"
#include "core/json.h"
#include "core/model_cache.h"
#include "core/status.h"
#include "tests/test_util.h"

namespace etsc {
namespace {

bool IsDataLossOrInvalid(const Status& status) {
  return status.code() == StatusCode::kDataLoss ||
         status.code() == StatusCode::kInvalidArgument;
}

/// Deterministic sample of byte positions in [0, size): a fixed count of
/// evenly spread offsets plus the boundaries, so the corpus covers the magic,
/// the header, the body, and the trailing checksum without scaling with file
/// size.
std::vector<size_t> CorpusPositions(size_t size) {
  std::vector<size_t> positions;
  if (size == 0) return positions;
  const size_t samples = 64;
  for (size_t i = 0; i < samples; ++i) {
    positions.push_back((i * size) / samples);
  }
  positions.push_back(size - 1);
  return positions;
}

std::string SavedEctsModel() {
  EctsClassifier model;
  const Status fitted = model.Fit(testing::MakeToyDataset(6, 16));
  EXPECT_TRUE(fitted.ok()) << fitted.ToString();
  std::stringstream stream;
  EXPECT_TRUE(model.Save(stream).ok());
  return stream.str();
}

// ---------------------------------------------------------------------------
// ETSCMODL model streams
// ---------------------------------------------------------------------------

TEST(ModelCorruption, EveryBitFlipIsDetected) {
  const std::string bytes = SavedEctsModel();
  ASSERT_GT(bytes.size(), 32u);
  for (const size_t pos : CorpusPositions(bytes.size())) {
    for (int bit = 0; bit < 8; bit += 3) {  // bits 0, 3, 6 of each byte
      std::string corrupt = bytes;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << bit));
      std::stringstream stream(corrupt);
      EctsClassifier model;
      const Status status = model.LoadFitted(stream);
      // The format checksums every section, so a single flipped bit anywhere
      // must be detected — loading can never silently succeed.
      EXPECT_FALSE(status.ok()) << "byte " << pos << " bit " << bit;
      EXPECT_TRUE(IsDataLossOrInvalid(status))
          << "byte " << pos << " bit " << bit << ": " << status.ToString();
    }
  }
}

TEST(ModelCorruption, EveryTruncationFailsCleanly) {
  const std::string bytes = SavedEctsModel();
  for (const size_t cut : CorpusPositions(bytes.size())) {
    std::stringstream stream(bytes.substr(0, cut));
    EctsClassifier model;
    const Status status = model.LoadFitted(stream);
    EXPECT_FALSE(status.ok()) << "cut at " << cut;
    EXPECT_TRUE(IsDataLossOrInvalid(status))
        << "cut at " << cut << ": " << status.ToString();
  }
}

// ---------------------------------------------------------------------------
// Model cache: corrupt entries demote to logged misses and are evicted
// ---------------------------------------------------------------------------

TEST(ModelCacheCorruption, CorruptEntryBecomesMissAndIsEvicted) {
  const std::string dir = ::testing::TempDir() + "corrupt_model_cache";
  const ModelCache cache(dir);
  const Dataset train = testing::MakeToyDataset(6, 16);

  EctsClassifier model;
  ASSERT_TRUE(model.Fit(train).ok());
  ModelCacheKey key;
  key.config_fingerprint = model.config_fingerprint();
  key.dataset_fingerprint = train.Fingerprint();
  key.fold = 0;
  key.num_folds = 2;
  key.seed = 42;
  ASSERT_TRUE(cache.Store(key, model).ok());

  // Sanity: the clean entry loads.
  EctsClassifier restored;
  ASSERT_TRUE(cache.TryLoad(key, &restored));

  // Corrupt the stored bytes in place (flip a bit in the body).
  const std::string path = cache.EntryPath(key, model.name());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  Counter& evictions =
      MetricRegistry::Global().counter("model_cache.corrupt_evictions");
  const uint64_t evictions_before = evictions.value();

  // The corrupt entry is a miss, never an error...
  EctsClassifier victim;
  EXPECT_FALSE(cache.TryLoad(key, &victim));
  // ...the bad file is deleted so later runs don't trip over it again...
  std::ifstream gone(path, std::ios::binary);
  EXPECT_FALSE(gone.good()) << path << " should have been evicted";
  EXPECT_EQ(evictions.value(), evictions_before + 1);

  // ...and a refit + store makes the slot usable again.
  EctsClassifier refit;
  ASSERT_TRUE(refit.Fit(train).ok());
  ASSERT_TRUE(cache.Store(key, refit).ok());
  EctsClassifier reloaded;
  EXPECT_TRUE(cache.TryLoad(key, &reloaded));
  EXPECT_EQ(evictions.value(), evictions_before + 1);  // no further evictions
}

// ---------------------------------------------------------------------------
// Campaign journals: flipped or truncated rows are skipped, never fatal
// ---------------------------------------------------------------------------

bench::CampaignConfig JournalConfig(const std::string& cache_name) {
  bench::CampaignConfig config;
  config.algorithms = {"ECTS"};
  config.datasets = {"DodgerLoopGame"};
  config.folds = 2;
  config.height_scale = 1.0;
  config.train_budget_seconds = 30.0;
  config.cache_path = ::testing::TempDir() + cache_name;
  std::remove(config.cache_path.c_str());
  std::remove((config.cache_path + ".stale").c_str());
  return config;
}

TEST(JournalCorruption, CorruptedJournalsNeverCrashTheLoader) {
  auto config = JournalConfig("journal_corruption.csv");
  bench::Campaign seed_campaign(config);
  seed_campaign.Run();

  std::string journal;
  {
    std::ifstream in(config.cache_path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    journal = buffer.str();
  }
  ASSERT_FALSE(journal.empty());

  auto run_report_only = [&](const std::string& contents, const char* what) {
    auto corrupt_config = JournalConfig("journal_corruption.csv");
    {
      std::ofstream out(corrupt_config.cache_path, std::ios::trunc);
      out << contents;
    }
    corrupt_config.report_only = true;  // load + report, no recompute
    bench::Campaign campaign(corrupt_config);
    campaign.Run();  // the assertion is "returns at all, cleanly"
    SUCCEED() << what;
  };

  // Each probe is a full (report-only) campaign run, so subsample the corpus.
  const std::vector<size_t> positions = CorpusPositions(journal.size());
  for (size_t i = 0; i < positions.size(); i += 8) {
    const size_t pos = positions[i];
    std::string flipped = journal;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x08);
    run_report_only(flipped, "bit flip");
    run_report_only(journal.substr(0, pos), "truncation");
  }
  // Pathological shapes seen from real half-written files.
  run_report_only("", "empty file");
  run_report_only("\n\n\n", "blank lines");
  run_report_only(std::string(4096, ','), "comma soup");
  run_report_only(journal + journal, "duplicated journal");
}

// ---------------------------------------------------------------------------
// JSON reports
// ---------------------------------------------------------------------------

TEST(ReportCorruption, FlippedAndTruncatedReportsParseToStatusNotCrash) {
  auto config = JournalConfig("report_corruption.csv");
  bench::Campaign campaign(config);
  campaign.Run();

  std::string report;
  {
    std::ifstream in(campaign.ReportPath());
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    report = buffer.str();
  }
  ASSERT_TRUE(json::Parse(report).ok());
  // Trim trailing whitespace so every strict prefix below is genuinely
  // incomplete (the root object's closing brace is the last byte).
  while (!report.empty() &&
         (report.back() == '\n' || report.back() == ' ')) {
    report.pop_back();
  }

  for (const size_t pos : CorpusPositions(report.size())) {
    std::string flipped = report;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x02);
    const auto parsed = json::Parse(flipped);  // either outcome is fine...
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
    const auto truncated = json::Parse(report.substr(0, pos));
    if (pos < report.size()) {
      EXPECT_FALSE(truncated.ok()) << "cut at " << pos;  // ...but no crash
    }
  }
}

// ---------------------------------------------------------------------------
// CSV loader diagnostics: file:line:column context on every rejection
// ---------------------------------------------------------------------------

TEST(CsvDiagnostics, NonNumericTokenReportsLineAndColumn) {
  const auto result = ParseCsv("1,0.5,0.25\n0,0.1,bogus\n", 1, "bad.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("bad.csv:2:7: bad numeric field "
                                           "'bogus'"),
            std::string::npos)
      << result.status().ToString();
}

TEST(CsvDiagnostics, BadLabelReportsColumnOne) {
  const auto result = ParseCsv("zero,0.5,0.25\n", 1, "bad.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("bad.csv:1:1: bad label field "
                                           "'zero'"),
            std::string::npos)
      << result.status().ToString();
}

TEST(CsvDiagnostics, RaggedMultivariateRowIsRejectedInPlace) {
  // Second variable of the first example has 2 values instead of 3.
  const auto result = ParseCsv("1,0.1,0.2,0.3\n1,0.4,0.5\n", 2, "ragged.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(
                "ragged.csv:2:1: ragged row: 2 values where the example's "
                "first variable has 3"),
            std::string::npos)
      << result.status().ToString();
}

TEST(CsvDiagnostics, TruncatedTrailingExampleIsRejected) {
  const auto result = ParseCsv("1,0.1,0.2\n1,0.3,0.4\n0,0.5,0.6\n", 2,
                               "trunc.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(
                "trunc.csv:3: truncated file: trailing rows do not form a "
                "complete example (got 1 of 2 variables)"),
            std::string::npos)
      << result.status().ToString();
}

TEST(CsvDiagnostics, BitFlippedCsvNeverCrashes) {
  const Dataset dataset = testing::MakeToyDataset(4, 8);
  const std::string clean = ToCsv(dataset);
  ASSERT_TRUE(ParseCsv(clean, 1, "toy.csv").ok());
  for (const size_t pos : CorpusPositions(clean.size())) {
    std::string flipped = clean;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x04);
    const auto result = ParseCsv(flipped, 1, "toy.csv");  // any clean outcome
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

// ---------------------------------------------------------------------------
// ARFF loader diagnostics
// ---------------------------------------------------------------------------

constexpr const char* kCleanArff =
    "@relation toy\n"
    "@attribute att0 numeric\n"
    "@attribute att1 numeric\n"
    "@attribute target {a,b}\n"
    "@data\n"
    "0.5,0.25,a\n"
    "0.125,0.75,b\n";

TEST(ArffDiagnostics, CleanFileLoads) {
  const auto result = ParseArff(kCleanArff, "toy.arff");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 2u);
}

TEST(ArffDiagnostics, BadNumericFieldReportsItsColumn) {
  const auto result = ParseArff(
      "@attribute att0 numeric\n"
      "@attribute target {a,b}\n"
      "@data\n"
      "oops,a\n",
      "bad.arff");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(
      result.status().message().find("bad.arff:4:1: bad numeric field 'oops'"),
      std::string::npos)
      << result.status().ToString();
}

TEST(ArffDiagnostics, RaggedFinalLineSuggestsTruncation) {
  const auto result = ParseArff(
      "@attribute att0 numeric\n"
      "@attribute att1 numeric\n"
      "@attribute target {a,b}\n"
      "@data\n"
      "0.5,0.25,a\n"
      "0.125,0.75",  // no trailing newline: the write was cut short
      "cut.arff");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(
                "cut.arff:6:1: ragged row: expected 3 fields, got 2 "
                "(truncated final line?)"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ArffDiagnostics, MissingDataSectionIsCalledOut) {
  const auto result = ParseArff(
      "@attribute att0 numeric\n"
      "@attribute target {a,b}\n",
      "headless.arff");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(
                "headless.arff: missing @data section (truncated file?)"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ArffDiagnostics, BitFlippedArffNeverCrashes) {
  const std::string clean(kCleanArff);
  for (const size_t pos : CorpusPositions(clean.size())) {
    for (int bit = 0; bit < 8; bit += 2) {
      std::string flipped = clean;
      flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << bit));
      const auto result = ParseArff(flipped, "toy.arff");
      if (!result.ok()) {
        EXPECT_FALSE(result.status().message().empty());
      }
    }
  }
}

}  // namespace
}  // namespace etsc
