#ifndef ETSC_TESTS_TEST_UTIL_H_
#define ETSC_TESTS_TEST_UTIL_H_

#include <cmath>
#include <numbers>
#include <vector>

#include "core/dataset.h"
#include "core/rng.h"
#include "core/time_series.h"

namespace etsc {
namespace testing {

/// Two-class univariate dataset that is easy to separate: class 0 is a low
/// flat-ish signal, class 1 a sine with an upward level shift appearing from
/// `signal_start` onward. Balanced, `per_class` instances each of `length`.
inline Dataset MakeToyDataset(size_t per_class = 20, size_t length = 40,
                              double signal_start = 0.0, uint64_t seed = 3,
                              double noise = 0.1) {
  Rng rng(seed);
  Dataset dataset;
  dataset.set_name("toy");
  const size_t start = static_cast<size_t>(signal_start * static_cast<double>(length));
  for (int label = 0; label < 2; ++label) {
    for (size_t i = 0; i < per_class; ++i) {
      std::vector<double> values(length);
      const double phase = rng.Uniform(0.0, 2.0 * std::numbers::pi);
      for (size_t t = 0; t < length; ++t) {
        double v = rng.Gaussian(0.0, noise);
        if (label == 1 && t >= start) {
          v += 1.5 + std::sin(2.0 * std::numbers::pi * 3.0 *
                                  static_cast<double>(t) /
                                  static_cast<double>(length) +
                              phase);
        }
        values[t] = v;
      }
      dataset.Add(TimeSeries::Univariate(std::move(values)), label);
    }
  }
  return dataset;
}

/// Three-class multivariate dataset (2 variables): the class sets the
/// frequency of the first channel and the level of the second.
inline Dataset MakeToyMultivariate(size_t per_class = 15, size_t length = 30,
                                   size_t classes = 3, uint64_t seed = 4,
                                   double noise = 0.1) {
  Rng rng(seed);
  Dataset dataset;
  dataset.set_name("toy-mv");
  for (size_t label = 0; label < classes; ++label) {
    for (size_t i = 0; i < per_class; ++i) {
      std::vector<double> a(length), b(length);
      const double phase = rng.Uniform(0.0, 2.0 * std::numbers::pi);
      for (size_t t = 0; t < length; ++t) {
        const double u = static_cast<double>(t) / static_cast<double>(length);
        a[t] = std::sin(2.0 * std::numbers::pi * (1.0 + static_cast<double>(label)) * u +
                        phase) +
               rng.Gaussian(0.0, noise);
        b[t] = static_cast<double>(label) + rng.Gaussian(0.0, noise);
      }
      auto series = TimeSeries::FromChannels({std::move(a), std::move(b)});
      dataset.Add(std::move(series).value(), static_cast<int>(label));
    }
  }
  return dataset;
}

/// Fraction of correct predictions of an early classifier on a dataset.
template <typename Classifier>
double EarlyAccuracy(const Classifier& classifier, const Dataset& test) {
  size_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    auto pred = classifier.PredictEarly(test.instance(i));
    if (pred.ok() && pred->label == test.label(i)) ++correct;
  }
  return test.empty() ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(test.size());
}

/// Fraction of correct predictions of a full classifier on a dataset.
template <typename Classifier>
double FullAccuracy(const Classifier& classifier, const Dataset& test) {
  size_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    auto pred = classifier.Predict(test.instance(i));
    if (pred.ok() && *pred == test.label(i)) ++correct;
  }
  return test.empty() ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(test.size());
}

}  // namespace testing
}  // namespace etsc

#endif  // ETSC_TESTS_TEST_UTIL_H_
